/**
 * @file
 * Tests for inference function chains (the paper's §7 future work):
 * SLO splitting, stage forwarding, end-to-end accounting.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "core/platform.hh"
#include "workload/generators.hh"

namespace {

using infless::core::ChainSpec;
using infless::core::Platform;
using infless::core::SloSplit;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::workload::uniformArrivals;

ChainSpec
osvtChain(infless::sim::Tick slo = msToTicks(400),
          SloSplit split = SloSplit::Proportional)
{
    ChainSpec spec;
    spec.name = "osvt";
    spec.models = {"SSD", "MobileNet", "ResNet-50"};
    spec.sloTicks = slo;
    spec.split = split;
    return spec;
}

TEST(ChainTest, DeployCreatesOneFunctionPerStage)
{
    Platform p(4);
    auto chain = p.deployChain(osvtChain());
    EXPECT_EQ(p.chainCount(), 1u);
    ASSERT_EQ(p.chainStages(chain).size(), 3u);
    EXPECT_EQ(p.functionCount(), 3u);
    EXPECT_EQ(p.spec(p.chainStages(chain)[0]).model, "SSD");
    EXPECT_EQ(p.spec(p.chainStages(chain)[2]).model, "ResNet-50");
}

TEST(ChainTest, StageSlosSumToEndToEndBudget)
{
    Platform p(4);
    auto chain = p.deployChain(osvtChain(msToTicks(400)));
    infless::sim::Tick total = 0;
    for (auto fn : p.chainStages(chain))
        total += p.spec(fn).sloTicks;
    EXPECT_NEAR(static_cast<double>(total),
                static_cast<double>(msToTicks(400)),
                static_cast<double>(msToTicks(5)));
}

TEST(ChainTest, ProportionalSplitFavorsSlowStages)
{
    Platform p(4);
    auto chain = p.deployChain(osvtChain(msToTicks(400)));
    // ResNet-50 and SSD are far heavier than MobileNet; proportional
    // splitting must give MobileNet the smallest budget.
    auto stages = p.chainStages(chain);
    auto mobilenet_slo = p.spec(stages[1]).sloTicks;
    EXPECT_LT(mobilenet_slo, p.spec(stages[0]).sloTicks);
    EXPECT_LT(mobilenet_slo, p.spec(stages[2]).sloTicks);
}

TEST(ChainTest, EqualSplitGivesEqualBudgets)
{
    Platform p(4);
    auto chain =
        p.deployChain(osvtChain(msToTicks(300), SloSplit::Equal));
    for (auto fn : p.chainStages(chain))
        EXPECT_EQ(p.spec(fn).sloTicks, msToTicks(100));
}

TEST(ChainTest, RequestsFlowThroughEveryStage)
{
    Platform p(8);
    auto chain = p.deployChain(osvtChain());
    p.injectChainTrace(chain, uniformArrivals(40.0, kTicksPerMin));
    p.run(kTicksPerMin + 15 * kTicksPerSec);

    const auto &cm = p.chainMetrics(chain);
    EXPECT_GT(cm.arrivals(), 2000);
    // Conservation end-to-end: every chain arrival either completed the
    // whole chain or was dropped at some stage.
    EXPECT_EQ(cm.completions() + cm.drops(), cm.arrivals());
    // Each stage saw (at most) the chain arrivals.
    for (auto fn : p.chainStages(chain)) {
        EXPECT_LE(p.functionMetrics(fn).arrivals(), cm.arrivals());
        EXPECT_GT(p.functionMetrics(fn).completions(), 0);
    }
}

TEST(ChainTest, EndToEndLatencyCoversAllStages)
{
    Platform p(8);
    auto chain = p.deployChain(osvtChain());
    p.injectChainTrace(chain, uniformArrivals(40.0, kTicksPerMin));
    p.run(kTicksPerMin + 15 * kTicksPerSec);

    const auto &cm = p.chainMetrics(chain);
    ASSERT_GT(cm.completions(), 0);
    // The chain's mean latency must exceed any single stage's mean.
    for (auto fn : p.chainStages(chain)) {
        EXPECT_GT(cm.latency().mean(),
                  p.functionMetrics(fn).latency().mean());
    }
    // And decompose into the accumulated parts.
    double parts = cm.coldTime().mean() + cm.queueTime().mean() +
                   cm.execTime().mean();
    EXPECT_NEAR(parts / cm.latency().mean(), 1.0, 0.05);
}

TEST(ChainTest, MeetsEndToEndSloUnderSteadyLoad)
{
    Platform p(8);
    auto chain = p.deployChain(osvtChain(msToTicks(500)));
    p.injectChainTrace(chain, uniformArrivals(60.0, 2 * kTicksPerMin));
    p.run(2 * kTicksPerMin + 15 * kTicksPerSec);
    EXPECT_LT(p.chainMetrics(chain).sloViolationRate(), 0.12);
}

TEST(ChainTest, SingleStageChainBehavesLikeAFunction)
{
    Platform p(4);
    ChainSpec spec;
    spec.name = "solo";
    spec.models = {"ResNet-50"};
    spec.sloTicks = msToTicks(200);
    auto chain = p.deployChain(spec);
    p.injectChainTrace(chain, uniformArrivals(30.0, 30 * kTicksPerSec));
    p.run(40 * kTicksPerSec);
    const auto &cm = p.chainMetrics(chain);
    auto fn = p.chainStages(chain)[0];
    EXPECT_EQ(cm.completions(), p.functionMetrics(fn).completions());
    EXPECT_EQ(p.spec(fn).sloTicks, msToTicks(200));
}

TEST(ChainTest, EmptyChainRejected)
{
    Platform p(2);
    ChainSpec spec;
    spec.name = "empty";
    EXPECT_THROW(p.deployChain(spec), infless::sim::PanicError);
}

TEST(ChainTest, ChainsAndFunctionsCoexist)
{
    Platform p(8);
    auto chain = p.deployChain(osvtChain());
    infless::core::FunctionSpec solo{"solo", "MNIST", msToTicks(50), 32};
    auto fn = p.deploy(solo);
    p.injectChainTrace(chain, uniformArrivals(30.0, kTicksPerMin));
    p.injectTrace(fn, uniformArrivals(20.0, kTicksPerMin));
    p.run(kTicksPerMin + 15 * kTicksPerSec);
    EXPECT_GT(p.chainMetrics(chain).completions(), 0);
    EXPECT_GT(p.functionMetrics(fn).completions(), 0);
    // The standalone function carries no chain accounting.
    EXPECT_EQ(p.functionMetrics(fn).completions() +
                  p.functionMetrics(fn).drops(),
              p.functionMetrics(fn).arrivals());
}

TEST(ChainTest, BadChainIdPanics)
{
    Platform p(2);
    EXPECT_THROW(p.chainMetrics(0), infless::sim::PanicError);
    EXPECT_THROW(p.chainStages(-1), infless::sim::PanicError);
}

} // namespace
