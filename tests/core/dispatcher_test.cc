/**
 * @file
 * Unit tests for the batch-aware dispatching logic (§3.2's three-case
 * rule, rate estimation, and weighted routing).
 */

#include <gtest/gtest.h>

#include <limits>

#include "core/dispatcher.hh"
#include "sim/time.hh"

namespace {

using infless::core::assessScaling;
using infless::core::InstanceRateInfo;
using infless::core::pickWeighted;
using infless::core::RateEstimator;
using infless::core::ScalingAssessment;
using infless::core::targetRates;
using infless::sim::kTicksPerSec;

using Action = ScalingAssessment::Action;

TEST(RateEstimatorTest, CountsWithinWindow)
{
    RateEstimator est(2 * kTicksPerSec);
    // 10 arrivals per second for three seconds.
    for (int i = 0; i < 30; ++i)
        est.record(i * kTicksPerSec / 10);
    // Mature estimate: ~20 arrivals in the trailing 2s window.
    EXPECT_NEAR(est.rps(3 * kTicksPerSec), 10.0, 0.6);
}

TEST(RateEstimatorTest, EarlyEstimateUsesObservedSpan)
{
    // Before a full window has elapsed the estimator divides by the
    // observed span, so ramp-up rates are not underestimated.
    RateEstimator est(2 * kTicksPerSec);
    for (int i = 0; i < 10; ++i)
        est.record(i * kTicksPerSec / 10); // 10 arrivals in 1 second
    EXPECT_NEAR(est.rps(kTicksPerSec), 10.0, 0.5);
}

TEST(RateEstimatorTest, OldArrivalsExpire)
{
    RateEstimator est(kTicksPerSec);
    est.record(0);
    est.record(kTicksPerSec / 2);
    EXPECT_DOUBLE_EQ(est.rps(kTicksPerSec), 1.0); // only the 0.5s one left
    EXPECT_DOUBLE_EQ(est.rps(10 * kTicksPerSec), 0.0);
}

TEST(AssessScalingTest, CaseOneScaleOut)
{
    auto a = assessScaling(120.0, 100.0, 40.0, 0.8);
    EXPECT_EQ(a.action, Action::ScaleOut);
    EXPECT_DOUBLE_EQ(a.residualRps, 20.0);
}

TEST(AssessScalingTest, CaseTwoHold)
{
    // Threshold = 0.8*40 + 0.2*100 = 52.
    auto a = assessScaling(60.0, 100.0, 40.0, 0.8);
    EXPECT_EQ(a.action, Action::Hold);
    auto boundary = assessScaling(52.0, 100.0, 40.0, 0.8);
    EXPECT_EQ(boundary.action, Action::Hold);
}

TEST(AssessScalingTest, CaseThreeScaleIn)
{
    auto a = assessScaling(50.0, 100.0, 40.0, 0.8);
    EXPECT_EQ(a.action, Action::ScaleIn);
}

TEST(AssessScalingTest, AlphaShiftsScaleInThreshold)
{
    // With alpha=0: threshold is R_max; anything below scales in.
    EXPECT_EQ(assessScaling(99.0, 100.0, 40.0, 0.0).action,
              Action::ScaleIn);
    // With alpha=1: threshold is R_min.
    EXPECT_EQ(assessScaling(45.0, 100.0, 40.0, 1.0).action, Action::Hold);
    EXPECT_EQ(assessScaling(39.0, 100.0, 40.0, 1.0).action,
              Action::ScaleIn);
}

TEST(AssessScalingTest, NoInstancesAlwaysScalesOut)
{
    auto a = assessScaling(10.0, 0.0, 0.0, 0.8);
    EXPECT_EQ(a.action, Action::ScaleOut);
    EXPECT_DOUBLE_EQ(a.residualRps, 10.0);
}

TEST(TargetRatesTest, FullLoadGivesUpperBounds)
{
    std::vector<InstanceRateInfo> infos = {{80, 28}, {40, 10}};
    auto rates = targetRates(infos, 120.0);
    EXPECT_DOUBLE_EQ(rates[0], 80.0);
    EXPECT_DOUBLE_EQ(rates[1], 40.0);
}

TEST(TargetRatesTest, MinimumLoadGivesLowerBounds)
{
    std::vector<InstanceRateInfo> infos = {{80, 28}, {40, 10}};
    auto rates = targetRates(infos, 38.0);
    EXPECT_DOUBLE_EQ(rates[0], 28.0);
    EXPECT_DOUBLE_EQ(rates[1], 10.0);
}

TEST(TargetRatesTest, InterpolationSumsToMeasuredRate)
{
    std::vector<InstanceRateInfo> infos = {{80, 28}, {40, 10}, {60, 20}};
    double measured = 120.0; // between Rmin=58 and Rmax=180
    auto rates = targetRates(infos, measured);
    double sum = rates[0] + rates[1] + rates[2];
    EXPECT_NEAR(sum, measured, 1e-9);
    for (std::size_t i = 0; i < infos.size(); ++i) {
        EXPECT_GE(rates[i], infos[i].rLow);
        EXPECT_LE(rates[i], infos[i].rUp);
    }
}

TEST(TargetRatesTest, RatesStayWithinBoundsWhenOverloaded)
{
    std::vector<InstanceRateInfo> infos = {{80, 28}};
    auto rates = targetRates(infos, 500.0);
    EXPECT_DOUBLE_EQ(rates[0], 80.0); // clamped at r_up
}

TEST(PickWeightedTest, PrefersLeastLoadedRelativeToWeight)
{
    std::vector<double> weights = {80.0, 40.0};
    std::vector<double> served = {10.0, 10.0};
    std::vector<bool> eligible = {true, true};
    // Instance 0 has twice the weight, so at equal served it wins.
    EXPECT_EQ(pickWeighted(weights, served, eligible), 0u);
    served[0] = 30.0;
    // (31)/80 = 0.3875 vs (11)/40 = 0.275 -> instance 1 now.
    EXPECT_EQ(pickWeighted(weights, served, eligible), 1u);
}

TEST(PickWeightedTest, SkipsIneligibleAndZeroWeight)
{
    std::vector<double> weights = {80.0, 0.0, 40.0};
    std::vector<double> served = {0.0, 0.0, 0.0};
    std::vector<bool> eligible = {false, true, true};
    EXPECT_EQ(pickWeighted(weights, served, eligible), 2u);
}

TEST(PickWeightedTest, NothingEligibleReturnsSentinel)
{
    std::vector<double> weights = {80.0};
    std::vector<double> served = {0.0};
    std::vector<bool> eligible = {false};
    EXPECT_EQ(pickWeighted(weights, served, eligible),
              std::numeric_limits<std::size_t>::max());
}

TEST(PickWeightedTest, AllZeroWeightsFallBackToLeastServed)
{
    // Every eligible instance at target rate zero (e.g. the estimator
    // reads 0 rps right after a lull) must still route: least-served
    // round-robin, not a silent drop.
    std::vector<double> weights = {0.0, 0.0, 0.0};
    std::vector<double> served = {5.0, 2.0, 9.0};
    std::vector<bool> eligible = {true, true, true};
    EXPECT_EQ(pickWeighted(weights, served, eligible), 1u);

    // Ineligible entries stay excluded from the fallback.
    eligible[1] = false;
    EXPECT_EQ(pickWeighted(weights, served, eligible), 0u);

    // A positive-weight entry still wins outright over the fallback.
    weights[2] = 10.0;
    EXPECT_EQ(pickWeighted(weights, served, eligible), 2u);
}

TEST(PickWeightedTest, LongRunShareMatchesWeights)
{
    // Simulate 1200 picks; shares should track weights 3:2:1.
    std::vector<double> weights = {30.0, 20.0, 10.0};
    std::vector<double> served = {0.0, 0.0, 0.0};
    std::vector<bool> eligible = {true, true, true};
    for (int i = 0; i < 1200; ++i) {
        auto pick = pickWeighted(weights, served, eligible);
        served[pick] += 1.0;
    }
    EXPECT_NEAR(served[0], 600.0, 2.0);
    EXPECT_NEAR(served[1], 400.0, 2.0);
    EXPECT_NEAR(served[2], 200.0, 2.0);
}

} // namespace
