/**
 * @file
 * Tests for the exhaustive oracle scheduler and the greedy's optimality
 * gap.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "cluster/cluster.hh"
#include "core/oracle_scheduler.hh"
#include "core/scheduler.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"

namespace {

using infless::cluster::Cluster;
using infless::core::GreedyScheduler;
using infless::core::OracleScheduler;
using infless::models::ExecModel;
using infless::models::ModelZoo;
using infless::profiler::CopPredictor;
using infless::profiler::OpProfileDb;
using infless::sim::msToTicks;

struct OracleFixture : ::testing::Test
{
    ExecModel exec;
    OpProfileDb db{exec};
    CopPredictor cop{db};
    OracleScheduler oracle{cop};
    GreedyScheduler greedy{cop};
    const ModelZoo &zoo = ModelZoo::shared();
};

TEST_F(OracleFixture, CoversDemandExactly)
{
    const auto &resnet = zoo.get("ResNet-50");
    auto result = oracle.solve(resnet, 100.0, msToTicks(200), 32);
    ASSERT_TRUE(result.feasible());
    EXPECT_TRUE(result.exact);
    EXPECT_GE(result.capacity, 100.0);
    // The low-side saturation constraint must also hold.
    double low_sum = 0.0;
    for (const auto &cfg : result.fleet)
        low_sum += cfg.bounds.low;
    EXPECT_LE(low_sum, 100.0 + 1e-9);
}

TEST_F(OracleFixture, ZeroDemandIsEmpty)
{
    const auto &resnet = zoo.get("ResNet-50");
    auto result = oracle.solve(resnet, 0.0, msToTicks(200), 32);
    EXPECT_TRUE(result.fleet.empty());
    EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST_F(OracleFixture, InfeasibleSloReturnsEmpty)
{
    const auto &bert = zoo.get("Bert-v1");
    auto result = oracle.solve(bert, 50.0, msToTicks(10), 32);
    EXPECT_FALSE(result.feasible());
}

TEST_F(OracleFixture, OracleNeverCostsMoreThanGreedy)
{
    // The oracle ignores placement, so it lower-bounds any placed fleet.
    const auto &resnet = zoo.get("ResNet-50");
    for (double demand : {25.0, 60.0, 150.0, 400.0}) {
        auto opt = oracle.solve(resnet, demand, msToTicks(200), 32);
        ASSERT_TRUE(opt.feasible()) << demand;

        Cluster cluster(8);
        auto plans =
            greedy.schedule(resnet, demand, msToTicks(200), 32, cluster);
        double greedy_cost = 0.0;
        for (const auto &plan : plans) {
            greedy_cost += plan.config.resources.weighted(
                infless::cluster::kDefaultBeta);
        }
        EXPECT_LE(opt.cost, greedy_cost + 1e-9) << demand;
    }
}

TEST_F(OracleFixture, GreedyOptimalityGapIsSmall)
{
    // The paper justifies the greedy heuristic; quantify it: the greedy
    // fleet should stay within 40% of the placement-free optimum across
    // models and demands.
    for (const char *name : {"ResNet-50", "SSD", "LSTM-2365"}) {
        const auto &model = zoo.get(name);
        infless::sim::Tick slo =
            model.gflops > 1.0 ? msToTicks(200) : msToTicks(50);
        for (double demand : {50.0, 200.0}) {
            auto opt = oracle.solve(model, demand, slo, 32);
            ASSERT_TRUE(opt.feasible()) << name << " " << demand;

            Cluster cluster(8);
            auto plans = greedy.schedule(model, demand, slo, 32, cluster);
            double greedy_cost = 0.0;
            double greedy_up = 0.0;
            for (const auto &plan : plans) {
                greedy_cost += plan.config.resources.weighted(
                    infless::cluster::kDefaultBeta);
                greedy_up += plan.bounds.up;
            }
            ASSERT_GE(greedy_up, demand) << name << " " << demand;
            EXPECT_LE(greedy_cost, opt.cost * 1.4 + 1e-9)
                << name << " demand " << demand;
        }
    }
}

TEST_F(OracleFixture, LiteralAlgorithmGapIsLarger)
{
    // The DESIGN.md amendments exist because the literal largest-first
    // rule lands much farther from the optimum at moderate rates.
    infless::core::SchedulerConfig literal;
    literal.largestBatchFirst = true;
    literal.uncappedEfficiency = true;
    GreedyScheduler paper(cop, literal);

    const auto &resnet = zoo.get("ResNet-50");
    double demand = 100.0;
    auto opt = oracle.solve(resnet, demand, msToTicks(200), 32);
    ASSERT_TRUE(opt.feasible());

    auto gap = [&](GreedyScheduler &sched) {
        Cluster cluster(8);
        auto plans =
            sched.schedule(resnet, demand, msToTicks(200), 32, cluster);
        double cost = 0.0;
        for (const auto &plan : plans) {
            cost += plan.config.resources.weighted(
                infless::cluster::kDefaultBeta);
        }
        return cost / opt.cost;
    };
    EXPECT_GT(gap(paper), gap(greedy));
}

} // namespace
