/**
 * @file
 * Edge-case tests for the platform: empty traces, zero-length runs,
 * incremental run() calls, chains on baseline platforms, and tiny
 * clusters.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "baselines/batch_otp.hh"
#include "baselines/openfaas_plus.hh"
#include "core/platform.hh"
#include "workload/generators.hh"
#include "workload/trace.hh"

namespace {

using infless::core::ChainSpec;
using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::ArrivalTrace;
using infless::workload::uniformArrivals;

FunctionSpec
resnetSpec()
{
    return FunctionSpec{"resnet", "ResNet-50", msToTicks(200), 32};
}

TEST(PlatformEdgeTest, EmptyTraceIsHarmless)
{
    Platform p(2);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, ArrivalTrace());
    p.run(10 * kTicksPerSec);
    EXPECT_EQ(p.totalMetrics().arrivals(), 0);
}

TEST(PlatformEdgeTest, ZeroLengthRunDoesNothing)
{
    Platform p(2);
    p.deploy(resnetSpec());
    p.run(0);
    EXPECT_EQ(p.totalMetrics().arrivals(), 0);
    EXPECT_EQ(p.liveInstanceCount(), 0);
}

TEST(PlatformEdgeTest, IncrementalRunsEqualOneBigRun)
{
    auto run_split = [](bool split) {
        infless::core::PlatformOptions opts;
        opts.seed = 11;
        Platform p(4, opts);
        auto fn = p.deploy(resnetSpec());
        p.injectRateSeries(
            fn, infless::workload::constantRate(60.0, kTicksPerMin));
        if (split) {
            for (int s = 5; s <= 90; s += 5)
                p.run(static_cast<Tick>(s) * kTicksPerSec);
        } else {
            p.run(90 * kTicksPerSec);
        }
        return p.totalMetrics().completions();
    };
    EXPECT_EQ(run_split(true), run_split(false));
}

TEST(PlatformEdgeTest, ChainsWorkOnBaselinePlatformsToo)
{
    // Chains are a platform feature; the baseline policy hooks must not
    // break stage forwarding.
    infless::baselines::BatchOtp p(4);
    ChainSpec spec;
    spec.name = "chain";
    spec.models = {"MobileNet", "ResNet-50"};
    spec.sloTicks = msToTicks(500);
    auto chain = p.deployChain(spec);
    p.injectChainTrace(chain, uniformArrivals(30.0, kTicksPerMin));
    p.run(kTicksPerMin + 15 * kTicksPerSec);
    const auto &cm = p.chainMetrics(chain);
    EXPECT_GT(cm.completions(), 0);
    EXPECT_EQ(cm.completions() + cm.drops(), cm.arrivals());
}

TEST(PlatformEdgeTest, SingleServerClusterStillServes)
{
    Platform p(1);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(40.0, kTicksPerMin));
    p.run(kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    // Allocation never exceeded the lone server.
    EXPECT_TRUE(p.cluster()
                    .totalAllocated()
                    .fitsIn(p.cluster().server(0).capacity()));
}

TEST(PlatformEdgeTest, ManyFunctionsNoTraffic)
{
    Platform p(2);
    for (int i = 0; i < 30; ++i) {
        FunctionSpec spec;
        spec.name = "fn" + std::to_string(i);
        spec.model = "MNIST";
        spec.sloTicks = msToTicks(50);
        p.deploy(spec);
    }
    p.run(kTicksPerMin);
    EXPECT_EQ(p.totalLaunches(), 0);
    EXPECT_TRUE(p.cluster().totalAllocated().isZero());
}

TEST(PlatformEdgeTest, LateTraceInjectionAfterRunning)
{
    // Traffic injected mid-run (arrival times in the past clamp to now).
    Platform p(2);
    auto fn = p.deploy(resnetSpec());
    p.run(30 * kTicksPerSec);
    p.injectTrace(fn, uniformArrivals(20.0, 10 * kTicksPerSec));
    p.run(60 * kTicksPerSec);
    // The trace's timestamps (1..10s) are in the past; they all fire at
    // injection time and still get served.
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.arrivals(), 150);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(PlatformEdgeTest, MaxBatchOneNeverBatches)
{
    Platform p(2);
    FunctionSpec spec = resnetSpec();
    spec.maxBatch = 1;
    auto fn = p.deploy(spec);
    p.injectTrace(fn, uniformArrivals(60.0, 30 * kTicksPerSec));
    p.run(40 * kTicksPerSec);
    const auto &m = p.functionMetrics(fn);
    ASSERT_GT(m.completions(), 0);
    EXPECT_DOUBLE_EQ(m.meanBatchFill(), 1.0);
}

} // namespace
