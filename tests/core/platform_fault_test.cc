/**
 * @file
 * Crash edge cases of the failure-aware control plane: crash mid-startup,
 * crash of an idle server, double-crash idempotency, retry exhaustion,
 * recovery, and the zero-rate-profile regression guarantee.
 */

#include <gtest/gtest.h>

#include "cluster/instance.hh"
#include "core/platform.hh"
#include "faults/domain_outage.hh"
#include "faults/retry_policy.hh"
#include "obs/slo_monitor.hh"
#include "workload/generators.hh"

namespace {

using infless::cluster::InstanceState;
using infless::cluster::ServerId;
using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::core::PlatformOptions;
using infless::faults::RetryPolicy;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::uniformArrivals;

FunctionSpec
resnetSpec(Tick slo = msToTicks(200))
{
    FunctionSpec spec;
    spec.name = "resnet";
    spec.model = "ResNet-50";
    spec.sloTicks = slo;
    return spec;
}

TEST(PlatformFaultTest, CrashMidStartupKillsColdInstance)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(50.0, 30 * kTicksPerSec));

    // The default cold start is ~1.5s+: shortly after the first arrival
    // the reactive scale-out has launched instances that are still cold.
    p.run(msToTicks(200));
    auto snapshots = p.instanceSnapshots(fn);
    ASSERT_FALSE(snapshots.empty());
    ASSERT_EQ(snapshots[0].state, InstanceState::ColdStarting);
    ServerId victim = snapshots[0].server;
    int live_before = p.liveInstanceCount(fn);

    p.injectServerCrash(victim);
    EXPECT_LT(p.liveInstanceCount(fn), live_before);
    EXPECT_EQ(p.totalMetrics().serverCrashes(), 1);

    // The pending onWarm event must dead-letter, not revive the corpse.
    p.run(35 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_GT(m.completions(), 0);
}

TEST(PlatformFaultTest, CrashOfIdleServerIsHarmless)
{
    Platform p(4);
    p.deploy(resnetSpec());
    // No traffic: no server hosts anything. Crashing one must not drop,
    // retry, or lose anything.
    p.run(kTicksPerSec);
    p.injectServerCrash(2);
    p.run(2 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.serverCrashes(), 1);
    EXPECT_EQ(m.drops(), 0);
    EXPECT_EQ(m.retries(), 0);
    EXPECT_EQ(m.lostBatchRequests(), 0);
    EXPECT_EQ(p.cluster().downServers(), 1u);
    EXPECT_LT(p.clusterAvailability(), 1.0);
}

TEST(PlatformFaultTest, DoubleCrashIsIdempotent)
{
    Platform p(4);
    p.deploy(resnetSpec());
    p.run(kTicksPerSec);

    p.injectServerCrash(1);
    p.injectServerCrash(1); // second crash of a down server: no-op
    EXPECT_EQ(p.totalMetrics().serverCrashes(), 1);
    EXPECT_EQ(p.cluster().downServers(), 1u);

    p.injectServerRecovery(1);
    p.injectServerRecovery(1); // double recovery: no-op
    EXPECT_EQ(p.totalMetrics().serverRecoveries(), 1);
    EXPECT_EQ(p.cluster().downServers(), 0u);

    // A later, genuine second crash is counted again.
    p.injectServerCrash(1);
    EXPECT_EQ(p.totalMetrics().serverCrashes(), 2);
}

TEST(PlatformFaultTest, RecoveryRestoresCapacity)
{
    Platform p(2);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(40.0, kTicksPerMin));

    p.run(5 * kTicksPerSec);
    p.injectServerCrash(0);
    p.injectServerCrash(1);
    EXPECT_EQ(p.liveInstanceCount(), 0);
    EXPECT_EQ(p.cluster().downServers(), 2u);

    // A real outage takes wall time; time-to-restore must reflect it.
    p.run(10 * kTicksPerSec);
    p.injectServerRecovery(0);
    p.injectServerRecovery(1);
    EXPECT_EQ(p.cluster().downServers(), 0u);
    EXPECT_GT(p.totalMetrics().meanRestoreTicks(), 0);

    // With capacity restored the scaler re-provisions and traffic flows.
    p.run(kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_GT(p.liveInstanceCount(), 0);
}

TEST(PlatformFaultTest, RetryExhaustionCountsExactlyOneDrop)
{
    PlatformOptions opts;
    opts.retry.maxAttempts = 2; // one retry per request
    opts.retry.initialBackoff = msToTicks(10);
    Platform p(2, opts);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 20 * kTicksPerSec));

    // Let requests queue, then take the whole cluster down and keep it
    // down: the in-flight/queued requests retry once, find no capacity,
    // and must then be dropped exactly once each.
    p.run(5 * kTicksPerSec);
    p.injectServerCrash(0);
    p.injectServerCrash(1);
    p.run(30 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    EXPECT_GT(m.retries(), 0);
    EXPECT_GT(m.drops(), 0);
    // Conservation is the exactly-once guarantee: a double-counted drop
    // (or a vanished request) breaks the identity.
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    // Nothing completed after the crash, so no failovers succeeded.
    EXPECT_EQ(m.failovers(), 0);
}

TEST(PlatformFaultTest, RetriesDisabledDropsImmediately)
{
    PlatformOptions opts;
    opts.retry = RetryPolicy::none();
    Platform p(2, opts);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 20 * kTicksPerSec));

    p.run(5 * kTicksPerSec);
    std::int64_t drops_before = p.totalMetrics().drops();
    p.injectServerCrash(0);
    p.injectServerCrash(1);
    // Queued and in-flight requests drop synchronously with the crash.
    EXPECT_GT(p.totalMetrics().drops(), drops_before);
    EXPECT_EQ(p.totalMetrics().retries(), 0);

    p.run(30 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(PlatformFaultTest, LostBatchRequestsAreFailedOver)
{
    Platform p(2); // default retry policy: 3 attempts
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, kTicksPerMin));

    // Crash while batches are executing: in-flight requests are lost,
    // failed over, and (on the surviving server) completed.
    p.run(10 * kTicksPerSec);
    auto snapshots = p.instanceSnapshots(fn);
    ASSERT_FALSE(snapshots.empty());
    p.injectServerCrash(snapshots[0].server);
    p.run(20 * kTicksPerSec);
    p.injectServerRecovery(snapshots[0].server);
    p.run(kTicksPerMin + 10 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_GT(m.retries(), 0);
    EXPECT_GT(m.failovers(), 0);
    // Successful failovers can't exceed re-dispatches.
    EXPECT_LE(m.failovers(), m.retries());
}

TEST(PlatformFaultTest, ZeroRateProfileIsBitIdentical)
{
    // The regression guarantee: a fault profile with every rate zero (and
    // any retry policy) must reproduce the default run bit-for-bit.
    auto run = [](PlatformOptions opts) {
        Platform p(4, std::move(opts));
        auto fn = p.deploy(resnetSpec());
        p.injectTrace(fn, uniformArrivals(80.0, kTicksPerMin));
        p.run(kTicksPerMin + 10 * kTicksPerSec);
        const auto &m = p.totalMetrics();
        return std::tuple(m.arrivals(), m.completions(), m.drops(),
                          m.batches(), m.launches(), m.sloViolations(),
                          m.latency().mean(), m.latency().percentile(99),
                          m.queueTime().mean(), p.totalLaunches(),
                          p.meanFragmentRatio());
    };

    PlatformOptions defaults;
    PlatformOptions zeroed;
    zeroed.faults.serverMtbfSec = 0.0;
    zeroed.faults.startupFailureProb = 0.0;
    zeroed.faults.stragglerProb = 0.0;
    zeroed.retry.maxAttempts = 5; // retry config alone must not matter

    EXPECT_EQ(run(defaults), run(zeroed));
}

TEST(PlatformDomainTest, ScriptedOutageCrashesAndRepairsWholeZone)
{
    PlatformOptions opts;
    opts.topology.zones = 2;
    opts.topology.racksPerZone = 1;
    opts.topology.rackSize = 2; // zone 0 = {0,1}, zone 1 = {2,3}
    opts.faults.domainOutageAt = 10 * kTicksPerSec;
    opts.faults.domainOutageTarget = 0;
    opts.faults.domainOutageMttrSec = 5.0;

    Platform p(4, opts);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 40 * kTicksPerSec));

    p.run(10 * kTicksPerSec + 1);
    // The whole zone went down together; the other zone is untouched.
    EXPECT_TRUE(p.cluster().serverDown(0));
    EXPECT_TRUE(p.cluster().serverDown(1));
    EXPECT_FALSE(p.cluster().serverDown(2));
    EXPECT_FALSE(p.cluster().serverDown(3));
    EXPECT_EQ(p.totalMetrics().domainOutages(), 1);
    EXPECT_EQ(p.totalMetrics().serverCrashes(), 2);

    // ...and it repairs together after the scripted MTTR.
    p.run(15 * kTicksPerSec + 1);
    EXPECT_EQ(p.cluster().downServers(), 0u);
    EXPECT_EQ(p.totalMetrics().serverRecoveries(), 2);

    p.run(50 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_GT(m.completions(), 0);
}

TEST(PlatformDomainTest, GrayServerIsDetectedEjectedAndReadmitted)
{
    PlatformOptions opts;
    opts.faults.grayFraction = 0.4;
    opts.faults.grayFactor = 4.0;
    // Pick a seed whose gray draw hits server 0 — the first machine the
    // greedy packer fills, so the gray machine actually serves work.
    while (infless::faults::grayExecMultiplier(opts.faults, opts.seed,
                                               0) == 1.0)
        ++opts.seed;
    opts.health.enabled = true;
    opts.health.probation = 20 * kTicksPerSec;

    Platform p(6, opts);
    EXPECT_EQ(p.grayMultiplier(0), 4.0);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(80.0, 90 * kTicksPerSec));
    p.run(100 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    // The health engine spotted the silent slowdown and quarantined the
    // machine (a gray detection: its multiplier exceeds 1).
    EXPECT_GT(m.healthEjections(), 0);
    EXPECT_GT(m.grayDetections(), 0);
    ASSERT_NE(p.healthEjector(), nullptr);
    EXPECT_GT(p.healthEjector()->ejections(), 0);
    // Probation expired at least once mid-run: it came back (and, still
    // gray, re-ejected on fresh evidence).
    EXPECT_GT(m.healthReadmissions(), 0);
    // The guard held: floor(0.2 * 6) = 1 quarantine slot.
    EXPECT_LE(p.quarantinedServers(), 1u);
    // Quarantine is drain-first, never drop: conservation holds.
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(PlatformDomainTest, TopologyAloneIsBitIdentical)
{
    // Assigning domains without enabling spread scoring or health must
    // reproduce the default run bit-for-bit: the topology is pure
    // bookkeeping until a consumer is switched on.
    auto run = [](PlatformOptions opts) {
        Platform p(4, std::move(opts));
        auto fn = p.deploy(resnetSpec());
        p.injectTrace(fn, uniformArrivals(80.0, kTicksPerMin));
        p.run(kTicksPerMin + 10 * kTicksPerSec);
        const auto &m = p.totalMetrics();
        return std::tuple(m.arrivals(), m.completions(), m.drops(),
                          m.batches(), m.launches(), m.sloViolations(),
                          m.latency().mean(), m.latency().percentile(99),
                          m.queueTime().mean(), p.totalLaunches(),
                          p.meanFragmentRatio());
    };

    PlatformOptions with_topology;
    with_topology.topology.zones = 2;
    with_topology.topology.rackSize = 2;
    EXPECT_EQ(run(PlatformOptions{}), run(with_topology));
}

// A burn-rate alert raised by a zone outage must blame the latency on
// capacity loss — cold starts and queueing on the survivors — not on
// execution, which never slowed down.
TEST(PlatformDomainTest, OutageAlertAttributesColdAndQueueNotExec)
{
    PlatformOptions opts;
    opts.topology.zones = 2;
    opts.topology.rackSize = 2;
    opts.faults.domainOutageAt = 20 * kTicksPerSec;
    opts.faults.domainOutageTarget = 0;
    opts.faults.domainOutageMttrSec = 15.0;
    opts.obs.slo.enabled = true;

    Platform p(4, opts);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 60 * kTicksPerSec));
    p.run(70 * kTicksPerSec);

    // The budget bled during the outage, loudly enough to page.
    ASSERT_GT(p.sloMonitor().alertsFired(), 0);
    bool post_outage_alert = false;
    for (const auto &alert : p.sloMonitor().alerts())
        post_outage_alert =
            post_outage_alert ||
            (alert.edge == infless::obs::AlertEdge::Firing &&
             alert.at > opts.faults.domainOutageAt);
    EXPECT_TRUE(post_outage_alert);

    // Attribution: against the pre-outage steady state, the damage is
    // cold-start + queue time (the capacity hole) — execution itself
    // never slowed down, so its per-completion share stays flat.
    double pre_cq = 0.0, pre_exec = 0.0, pre_n = 0.0;
    double out_cq = 0.0, out_exec = 0.0, out_n = 0.0;
    for (const auto &row : p.sloMonitor().closed(fn)) {
        if (row.completions == 0)
            continue;
        // Baseline: the steady state between the deploy-time warmup
        // (cold starts at t=0 bleed into the first windows) and the
        // outage.
        if (row.start >= 10 * kTicksPerSec &&
            row.start + p.sloMonitor().config().windowTicks <=
                opts.faults.domainOutageAt) {
            pre_cq += row.coldSum + row.queueSum;
            pre_exec += row.execSum;
            pre_n += static_cast<double>(row.completions);
        } else if (row.start >= opts.faults.domainOutageAt &&
                   row.start <=
                       opts.faults.domainOutageAt + 10 * kTicksPerSec) {
            out_cq += row.coldSum + row.queueSum;
            out_exec += row.execSum;
            out_n += static_cast<double>(row.completions);
        }
    }
    ASSERT_GT(pre_n, 0.0);
    ASSERT_GT(out_n, 0.0);
    EXPECT_GT(out_cq / out_n, 2.0 * (pre_cq / pre_n));
    EXPECT_LT(out_exec / out_n, 1.5 * (pre_exec / pre_n));
    EXPECT_GT(out_exec / out_n, 0.5 * (pre_exec / pre_n));
}

TEST(PlatformFaultTest, InjectorDrivenChaosConservesRequests)
{
    PlatformOptions opts;
    opts.faults.serverMtbfSec = 30.0;
    opts.faults.serverMttrSec = 10.0;
    opts.faults.startupFailureProb = 0.05;
    opts.faults.stragglerProb = 0.05;
    opts.faults.stragglerFactor = 2.0;
    // No crashes in the last stretch so retry chains can drain.
    opts.faults.crashHorizon = 2 * kTicksPerMin;

    Platform p(4, opts);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 2 * kTicksPerMin));
    p.run(2 * kTicksPerMin + 30 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    ASSERT_NE(p.faultInjector(), nullptr);
    EXPECT_GT(m.serverCrashes(), 0);
    EXPECT_GT(m.serverRecoveries(), 0);
    EXPECT_GT(m.completions(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    double availability = p.clusterAvailability();
    EXPECT_GT(availability, 0.0);
    EXPECT_LT(availability, 1.0);
}

} // namespace
