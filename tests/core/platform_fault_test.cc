/**
 * @file
 * Crash edge cases of the failure-aware control plane: crash mid-startup,
 * crash of an idle server, double-crash idempotency, retry exhaustion,
 * recovery, and the zero-rate-profile regression guarantee.
 */

#include <gtest/gtest.h>

#include "cluster/instance.hh"
#include "core/platform.hh"
#include "faults/retry_policy.hh"
#include "workload/generators.hh"

namespace {

using infless::cluster::InstanceState;
using infless::cluster::ServerId;
using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::core::PlatformOptions;
using infless::faults::RetryPolicy;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::uniformArrivals;

FunctionSpec
resnetSpec(Tick slo = msToTicks(200))
{
    FunctionSpec spec;
    spec.name = "resnet";
    spec.model = "ResNet-50";
    spec.sloTicks = slo;
    return spec;
}

TEST(PlatformFaultTest, CrashMidStartupKillsColdInstance)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(50.0, 30 * kTicksPerSec));

    // The default cold start is ~1.5s+: shortly after the first arrival
    // the reactive scale-out has launched instances that are still cold.
    p.run(msToTicks(200));
    auto snapshots = p.instanceSnapshots(fn);
    ASSERT_FALSE(snapshots.empty());
    ASSERT_EQ(snapshots[0].state, InstanceState::ColdStarting);
    ServerId victim = snapshots[0].server;
    int live_before = p.liveInstanceCount(fn);

    p.injectServerCrash(victim);
    EXPECT_LT(p.liveInstanceCount(fn), live_before);
    EXPECT_EQ(p.totalMetrics().serverCrashes(), 1);

    // The pending onWarm event must dead-letter, not revive the corpse.
    p.run(35 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_GT(m.completions(), 0);
}

TEST(PlatformFaultTest, CrashOfIdleServerIsHarmless)
{
    Platform p(4);
    p.deploy(resnetSpec());
    // No traffic: no server hosts anything. Crashing one must not drop,
    // retry, or lose anything.
    p.run(kTicksPerSec);
    p.injectServerCrash(2);
    p.run(2 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.serverCrashes(), 1);
    EXPECT_EQ(m.drops(), 0);
    EXPECT_EQ(m.retries(), 0);
    EXPECT_EQ(m.lostBatchRequests(), 0);
    EXPECT_EQ(p.cluster().downServers(), 1u);
    EXPECT_LT(p.clusterAvailability(), 1.0);
}

TEST(PlatformFaultTest, DoubleCrashIsIdempotent)
{
    Platform p(4);
    p.deploy(resnetSpec());
    p.run(kTicksPerSec);

    p.injectServerCrash(1);
    p.injectServerCrash(1); // second crash of a down server: no-op
    EXPECT_EQ(p.totalMetrics().serverCrashes(), 1);
    EXPECT_EQ(p.cluster().downServers(), 1u);

    p.injectServerRecovery(1);
    p.injectServerRecovery(1); // double recovery: no-op
    EXPECT_EQ(p.totalMetrics().serverRecoveries(), 1);
    EXPECT_EQ(p.cluster().downServers(), 0u);

    // A later, genuine second crash is counted again.
    p.injectServerCrash(1);
    EXPECT_EQ(p.totalMetrics().serverCrashes(), 2);
}

TEST(PlatformFaultTest, RecoveryRestoresCapacity)
{
    Platform p(2);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(40.0, kTicksPerMin));

    p.run(5 * kTicksPerSec);
    p.injectServerCrash(0);
    p.injectServerCrash(1);
    EXPECT_EQ(p.liveInstanceCount(), 0);
    EXPECT_EQ(p.cluster().downServers(), 2u);

    // A real outage takes wall time; time-to-restore must reflect it.
    p.run(10 * kTicksPerSec);
    p.injectServerRecovery(0);
    p.injectServerRecovery(1);
    EXPECT_EQ(p.cluster().downServers(), 0u);
    EXPECT_GT(p.totalMetrics().meanRestoreTicks(), 0);

    // With capacity restored the scaler re-provisions and traffic flows.
    p.run(kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_GT(p.liveInstanceCount(), 0);
}

TEST(PlatformFaultTest, RetryExhaustionCountsExactlyOneDrop)
{
    PlatformOptions opts;
    opts.retry.maxAttempts = 2; // one retry per request
    opts.retry.initialBackoff = msToTicks(10);
    Platform p(2, opts);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 20 * kTicksPerSec));

    // Let requests queue, then take the whole cluster down and keep it
    // down: the in-flight/queued requests retry once, find no capacity,
    // and must then be dropped exactly once each.
    p.run(5 * kTicksPerSec);
    p.injectServerCrash(0);
    p.injectServerCrash(1);
    p.run(30 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    EXPECT_GT(m.retries(), 0);
    EXPECT_GT(m.drops(), 0);
    // Conservation is the exactly-once guarantee: a double-counted drop
    // (or a vanished request) breaks the identity.
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    // Nothing completed after the crash, so no failovers succeeded.
    EXPECT_EQ(m.failovers(), 0);
}

TEST(PlatformFaultTest, RetriesDisabledDropsImmediately)
{
    PlatformOptions opts;
    opts.retry = RetryPolicy::none();
    Platform p(2, opts);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 20 * kTicksPerSec));

    p.run(5 * kTicksPerSec);
    std::int64_t drops_before = p.totalMetrics().drops();
    p.injectServerCrash(0);
    p.injectServerCrash(1);
    // Queued and in-flight requests drop synchronously with the crash.
    EXPECT_GT(p.totalMetrics().drops(), drops_before);
    EXPECT_EQ(p.totalMetrics().retries(), 0);

    p.run(30 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(PlatformFaultTest, LostBatchRequestsAreFailedOver)
{
    Platform p(2); // default retry policy: 3 attempts
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, kTicksPerMin));

    // Crash while batches are executing: in-flight requests are lost,
    // failed over, and (on the surviving server) completed.
    p.run(10 * kTicksPerSec);
    auto snapshots = p.instanceSnapshots(fn);
    ASSERT_FALSE(snapshots.empty());
    p.injectServerCrash(snapshots[0].server);
    p.run(20 * kTicksPerSec);
    p.injectServerRecovery(snapshots[0].server);
    p.run(kTicksPerMin + 10 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_GT(m.retries(), 0);
    EXPECT_GT(m.failovers(), 0);
    // Successful failovers can't exceed re-dispatches.
    EXPECT_LE(m.failovers(), m.retries());
}

TEST(PlatformFaultTest, ZeroRateProfileIsBitIdentical)
{
    // The regression guarantee: a fault profile with every rate zero (and
    // any retry policy) must reproduce the default run bit-for-bit.
    auto run = [](PlatformOptions opts) {
        Platform p(4, std::move(opts));
        auto fn = p.deploy(resnetSpec());
        p.injectTrace(fn, uniformArrivals(80.0, kTicksPerMin));
        p.run(kTicksPerMin + 10 * kTicksPerSec);
        const auto &m = p.totalMetrics();
        return std::tuple(m.arrivals(), m.completions(), m.drops(),
                          m.batches(), m.launches(), m.sloViolations(),
                          m.latency().mean(), m.latency().percentile(99),
                          m.queueTime().mean(), p.totalLaunches(),
                          p.meanFragmentRatio());
    };

    PlatformOptions defaults;
    PlatformOptions zeroed;
    zeroed.faults.serverMtbfSec = 0.0;
    zeroed.faults.startupFailureProb = 0.0;
    zeroed.faults.stragglerProb = 0.0;
    zeroed.retry.maxAttempts = 5; // retry config alone must not matter

    EXPECT_EQ(run(defaults), run(zeroed));
}

TEST(PlatformFaultTest, InjectorDrivenChaosConservesRequests)
{
    PlatformOptions opts;
    opts.faults.serverMtbfSec = 30.0;
    opts.faults.serverMttrSec = 10.0;
    opts.faults.startupFailureProb = 0.05;
    opts.faults.stragglerProb = 0.05;
    opts.faults.stragglerFactor = 2.0;
    // No crashes in the last stretch so retry chains can drain.
    opts.faults.crashHorizon = 2 * kTicksPerMin;

    Platform p(4, opts);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 2 * kTicksPerMin));
    p.run(2 * kTicksPerMin + 30 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    ASSERT_NE(p.faultInjector(), nullptr);
    EXPECT_GT(m.serverCrashes(), 0);
    EXPECT_GT(m.serverRecoveries(), 0);
    EXPECT_GT(m.completions(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    double availability = p.clusterAvailability();
    EXPECT_GT(availability, 0.0);
    EXPECT_LT(availability, 1.0);
}

} // namespace
