/**
 * @file
 * Observability integration with the platform: tracing emits the
 * expected lifecycle spans and fault instants, sampling rate 0 and
 * profiling leave every simulation output bit-identical, and the
 * overhead profiler populates under load.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/platform.hh"
#include "obs/prof_scope.hh"
#include "obs/slo_monitor.hh"
#include "obs/trace_recorder.hh"
#include "workload/generators.hh"

namespace {

using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::core::PlatformOptions;
using infless::obs::AlertEdge;
using infless::obs::FlightTrigger;
using infless::obs::Phase;
using infless::obs::SloAlert;
using infless::obs::SpanKind;
using infless::obs::SpanRecord;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::uniformArrivals;

FunctionSpec
resnetSpec(Tick slo = msToTicks(200))
{
    FunctionSpec spec;
    spec.name = "resnet";
    spec.model = "ResNet-50";
    spec.sloTicks = slo;
    return spec;
}

/** Every simulation output a run produces, as a comparable tuple. */
auto
metricTuple(const Platform &p)
{
    const auto &m = p.totalMetrics();
    return std::make_tuple(
        m.arrivals(), m.completions(), m.drops(), m.sloViolations(),
        m.launches(), m.coldLaunches(), m.batches(),
        m.latency().percentile(99.0), m.queueTime().percentile(99.0),
        m.execTime().percentile(99.0), m.meanBatchFill(),
        p.liveInstanceCount(), p.meanFragmentRatio());
}

void
runWorkload(Platform &p)
{
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(80.0, kTicksPerMin));
    p.run(kTicksPerMin + 10 * kTicksPerSec);
}

TEST(PlatformObsTest, TracingAndProfilingAreBitIdentical)
{
    // Reference: observability fully off (the default options).
    Platform plain(4);
    runWorkload(plain);

    // Full-rate tracing + profiling on: every simulation output must be
    // unchanged — tracing draws no randomness and schedules no events,
    // profiling reads only the host's wall clock.
    PlatformOptions opts;
    opts.obs.trace.sampleRate = 1.0;
    opts.obs.profiling = true;
    Platform traced(4, std::move(opts));
    runWorkload(traced);

    EXPECT_EQ(metricTuple(plain), metricTuple(traced));
    EXPECT_GT(traced.tracer().recorded(), 0u);
}

TEST(PlatformObsTest, RateZeroRecordsNothing)
{
    PlatformOptions opts;
    opts.obs.trace.sampleRate = 0.0;
    Platform p(4, std::move(opts));
    runWorkload(p);
    EXPECT_FALSE(p.tracer().enabled());
    EXPECT_EQ(p.tracer().recorded(), 0u);
    EXPECT_EQ(p.tracer().size(), 0u);
}

TEST(PlatformObsTest, FullRateTracingEmitsLifecycleSpans)
{
    PlatformOptions opts;
    opts.obs.trace.sampleRate = 1.0;
    opts.obs.trace.capacity = 1 << 18; // keep the whole run
    Platform p(4, std::move(opts));
    runWorkload(p);

    int arrivals = 0, queues = 0, execs = 0, completes = 0, colds = 0;
    for (const SpanRecord &rec : p.tracer().snapshot()) {
        switch (rec.kind) {
          case SpanKind::Arrival:
            ++arrivals;
            break;
          case SpanKind::Queue:
            ++queues;
            EXPECT_GE(rec.server, 0);
            EXPECT_GE(rec.instance, 0);
            break;
          case SpanKind::Exec:
            ++execs;
            EXPECT_GT(rec.duration, 0);
            break;
          case SpanKind::Complete:
            ++completes;
            break;
          case SpanKind::ColdStart:
            ++colds;
            EXPECT_GT(rec.duration, 0);
            break;
          default:
            break;
        }
    }
    const auto &m = p.totalMetrics();
    EXPECT_EQ(arrivals, m.arrivals());
    EXPECT_EQ(completes, m.completions());
    EXPECT_EQ(queues, completes); // one queue span per completion
    EXPECT_EQ(execs, completes);
    EXPECT_GT(colds, 0); // the first requests waited through a cold start
}

TEST(PlatformObsTest, CrashAndRecoveryEmitClusterInstants)
{
    PlatformOptions opts;
    opts.obs.trace.sampleRate = 1.0;
    Platform p(4, std::move(opts));
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(50.0, 30 * kTicksPerSec));

    p.run(5 * kTicksPerSec);
    p.injectServerCrash(0);
    p.run(10 * kTicksPerSec);
    p.injectServerRecovery(0);
    p.run(35 * kTicksPerSec);

    int crashes = 0, recoveries = 0;
    for (const SpanRecord &rec : p.tracer().snapshot()) {
        if (rec.kind == SpanKind::ServerCrash) {
            ++crashes;
            EXPECT_EQ(rec.server, 0);
        }
        if (rec.kind == SpanKind::ServerRecovery)
            ++recoveries;
    }
    EXPECT_EQ(crashes, 1);
    EXPECT_EQ(recoveries, 1);
}

TEST(PlatformObsTest, FractionalSamplingTracesSubsetConsistently)
{
    PlatformOptions opts;
    opts.obs.trace.sampleRate = 0.25;
    Platform p(4, std::move(opts));
    runWorkload(p);

    const auto &tracer = p.tracer();
    EXPECT_GT(tracer.recorded(), 0u);
    // Every recorded request must itself be sampled (no leakage), and
    // strictly fewer than all arrivals can be traced.
    for (const SpanRecord &rec : tracer.snapshot()) {
        if (rec.request >= 0)
            EXPECT_TRUE(tracer.sampled(rec.request));
    }
    EXPECT_LT(tracer.recorded(),
              static_cast<std::uint64_t>(p.totalMetrics().arrivals()) * 4);
}

TEST(PlatformObsTest, ProfilerPopulatesUnderLoad)
{
    PlatformOptions opts;
    opts.obs.profiling = true;
    Platform p(4, std::move(opts));
    runWorkload(p);

    const auto &prof = p.overheads();
    // The scaler fires every period, and any scale-out runs Algorithm 1
    // with its nested COP enumeration; expirations hit the keep-alive
    // policy.
    EXPECT_GT(prof.stats(Phase::Autoscaler).count, 0u);
    EXPECT_GT(prof.stats(Phase::Schedule).count, 0u);
    EXPECT_GT(prof.stats(Phase::CopSolve).count, 0u);
    EXPECT_GT(prof.stats(Phase::ColdStartPolicy).count, 0u);
    // COP solves nest inside schedule calls: at least as many.
    EXPECT_GE(prof.stats(Phase::CopSolve).count,
              prof.stats(Phase::Schedule).count);
}

TEST(PlatformObsTest, ProfilerOffRecordsNothing)
{
    Platform p(4);
    runWorkload(p);
    EXPECT_FALSE(p.overheads().enabled());
    EXPECT_EQ(p.overheads().stats(Phase::Schedule).count, 0u);
    EXPECT_EQ(p.overheads().stats(Phase::Autoscaler).count, 0u);
}

TEST(PlatformObsTest, SloMonitorAndFlightRecorderAreBitIdentical)
{
    // Same doctrine as tracing: the health engine observes completions
    // and the flight ring records spans, but neither schedules events or
    // draws randomness, so every simulation output is unchanged.
    Platform plain(4);
    runWorkload(plain);

    PlatformOptions opts;
    opts.obs.slo.enabled = true;
    opts.obs.flight.enabled = true;
    Platform watched(4, std::move(opts));
    runWorkload(watched);

    EXPECT_EQ(metricTuple(plain), metricTuple(watched));
    EXPECT_GT(watched.sloMonitor().closed(0).size(), 0u);
    EXPECT_GT(watched.flightRecorder().recorded(), 0u);
    // And off-by-default means absent: the plain run holds no health
    // state at all.
    EXPECT_FALSE(plain.sloMonitor().enabled());
    EXPECT_TRUE(plain.sloMonitor().functions().empty());
    EXPECT_FALSE(plain.flightRecorder().enabled());
}

TEST(PlatformObsTest, SloAttributionMatchesRunMetrics)
{
    PlatformOptions opts;
    opts.obs.slo.enabled = true;
    Platform p(4, std::move(opts));
    runWorkload(p);

    const auto &m = p.totalMetrics();
    std::int64_t completions = 0, violations = 0, drops = 0;
    double attributed = 0.0;
    for (const auto &row : p.sloMonitor().closed(0)) {
        completions += row.completions;
        violations += row.violations;
        drops += row.drops;
        attributed +=
            row.coldSum + row.queueSum + row.batchSum + row.execSum;
    }
    EXPECT_EQ(completions, m.completions());
    EXPECT_EQ(violations, m.sloViolations());
    EXPECT_EQ(drops, m.drops());
    // The four-way split is exhaustive: cold + (queue - batch_wait) +
    // batch_wait + exec sums to the end-to-end latency mass.
    EXPECT_NEAR(attributed, m.latency().sum(),
                1e-6 * std::max(1.0, m.latency().sum()));
    // The batching tax is a refinement of queue wait, never extra mass.
    EXPECT_EQ(m.batchTime().count(), m.completions());
}

TEST(PlatformObsTest, FastBurnAlertFreezesTheFlightDump)
{
    PlatformOptions opts;
    opts.obs.slo.enabled = true;
    opts.obs.flight.enabled = true;
    Platform p(1, std::move(opts));
    auto fn = p.deploy(resnetSpec());
    // Far beyond one server's capacity: the violation fraction saturates
    // and the fast rule fires as soon as its 2-window span closes.
    p.injectTrace(fn, uniformArrivals(4000.0, 6 * kTicksPerSec));
    p.run(10 * kTicksPerSec);

    const auto &monitor = p.sloMonitor();
    ASSERT_GT(monitor.alertsFired(), 0);
    const SloAlert *first = nullptr;
    for (const SloAlert &alert : monitor.alerts()) {
        if (alert.edge == AlertEdge::Firing) {
            first = &alert;
            break;
        }
    }
    ASSERT_NE(first, nullptr);

    const auto &flight = p.flightRecorder();
    ASSERT_TRUE(flight.triggered());
    EXPECT_EQ(flight.triggerCause(), FlightTrigger::SloFastBurn);
    EXPECT_EQ(flight.triggerAt(), first->at);
    // The frozen dump ends with the marker at the alert instant: the
    // evidence is the seconds leading INTO the incident.
    ASSERT_FALSE(flight.dump().empty());
    EXPECT_EQ(flight.dump().back().kind, SpanKind::FlightDump);
    EXPECT_EQ(flight.dump().back().start, first->at);
}

TEST(PlatformObsTest, ServerCrashTriggersTheFlightDump)
{
    PlatformOptions opts;
    opts.obs.flight.enabled = true;
    Platform p(4, std::move(opts));
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(50.0, 10 * kTicksPerSec));
    p.run(5 * kTicksPerSec);
    p.injectServerCrash(2);
    p.run(15 * kTicksPerSec);

    const auto &flight = p.flightRecorder();
    ASSERT_TRUE(flight.triggered());
    EXPECT_EQ(flight.triggerCause(), FlightTrigger::ServerCrash);
    EXPECT_EQ(flight.triggerAt(), 5 * kTicksPerSec);
    // The crash span is emitted before the trigger freezes the dump, so
    // the incident itself is inside the evidence.
    bool has_crash = false;
    for (const SpanRecord &rec : flight.dump()) {
        if (rec.kind == SpanKind::ServerCrash && rec.server == 2)
            has_crash = true;
    }
    EXPECT_TRUE(has_crash);
}

} // namespace
