/**
 * @file
 * Overload control plane integration with the platform: the disabled
 * (and inert) configs leave every simulation output bit-identical,
 * admission control sheds under burst overload, bounded queues evict,
 * the breaker opens and recovers, brownout engages, the retry budget
 * caps failover storms, and request conservation holds throughout.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/platform.hh"
#include "obs/trace_recorder.hh"
#include "workload/generators.hh"

namespace {

using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::core::PlatformOptions;
using infless::obs::SpanKind;
using infless::obs::SpanRecord;
using infless::overload::BreakerState;
using infless::overload::OverloadConfig;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::uniformArrivals;

FunctionSpec
resnetSpec(Tick slo = msToTicks(200))
{
    FunctionSpec spec;
    spec.name = "resnet";
    spec.model = "ResNet-50";
    spec.sloTicks = slo;
    return spec;
}

/** Every simulation output a run produces, as a comparable tuple. */
auto
metricTuple(const Platform &p)
{
    const auto &m = p.totalMetrics();
    return std::make_tuple(
        m.arrivals(), m.completions(), m.drops(), m.sloViolations(),
        m.launches(), m.coldLaunches(), m.batches(),
        m.latency().percentile(99.0), m.queueTime().percentile(99.0),
        m.execTime().percentile(99.0), m.meanBatchFill(),
        p.liveInstanceCount(), p.meanFragmentRatio());
}

/** Sustained burst well past what two servers absorb within SLO. */
void
runBurst(Platform &p, double rps = 2000.0,
         Tick duration = 20 * kTicksPerSec)
{
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(rps, duration));
    p.run(duration + 10 * kTicksPerSec);
}

TEST(PlatformOverloadTest, ZeroOverloadConfigIsBitIdentical)
{
    // Reference: the seed platform's defaults (overload absent).
    Platform plain(2);
    runBurst(plain);

    // Inert settings: every subsystem switched on but tuned so it can
    // never fire — unreachable thresholds, unbounded slack, a budget
    // nothing draws on, the legacy queue bound. The simulation must not
    // notice the control plane exists.
    PlatformOptions opts;
    opts.overload.admission.enabled = true;
    opts.overload.admission.slackFactor = 1e12;
    opts.overload.breaker.enabled = true;
    opts.overload.breaker.openThreshold = 1.5; // rate <= 1: unreachable
    opts.overload.retryBudget.enabled = true;
    opts.overload.brownout.enabled = true;
    opts.overload.brownout.enterThreshold = 1.5;
    Platform inert(2, std::move(opts));
    runBurst(inert);

    EXPECT_EQ(metricTuple(plain), metricTuple(inert));
    auto snap = inert.overloadSnapshot(0);
    EXPECT_EQ(snap.breakerState, BreakerState::Closed);
    EXPECT_FALSE(snap.brownoutActive);
    EXPECT_EQ(snap.sheds, 0);
    EXPECT_EQ(snap.breakerSheds, 0);
    EXPECT_EQ(snap.queueEvictions, 0);
    EXPECT_EQ(snap.retryBudgetExhausted, 0);
}

TEST(PlatformOverloadTest, DisabledConfigReportsNoOverloadActivity)
{
    Platform p(2);
    runBurst(p);
    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.sheds(), 0);
    EXPECT_EQ(m.breakerSheds(), 0);
    EXPECT_EQ(m.queueEvictions(), 0);
    EXPECT_EQ(m.retryBudgetExhausted(), 0);
    EXPECT_EQ(m.breakerOpens(), 0);
    EXPECT_EQ(m.brownoutEntries(), 0);
}

TEST(PlatformOverloadTest, AdmissionShedsAndPreservesConservation)
{
    PlatformOptions opts;
    opts.overload.admission.enabled = true;
    Platform p(2, std::move(opts));
    runBurst(p);

    const auto &m = p.totalMetrics();
    EXPECT_GT(m.sheds(), 0);
    // Sheds are a kind of drop: the total drop count covers them, so
    // the conservation identity is unchanged.
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_TRUE(p.auditConservation());
}

TEST(PlatformOverloadTest, AdmissionImprovesInSloGoodput)
{
    Platform undefended(2);
    runBurst(undefended);

    PlatformOptions opts;
    opts.overload.admission.enabled = true;
    Platform defended(2, std::move(opts));
    runBurst(defended);

    // Fail-fast shedding must convert SLO-violating completions into
    // cheap rejects: more completions land inside the SLO than when
    // every request is allowed to queue.
    const auto &um = undefended.totalMetrics();
    const auto &dm = defended.totalMetrics();
    EXPECT_GE(dm.completions() - dm.sloViolations(),
              um.completions() - um.sloViolations());
}

TEST(PlatformOverloadTest, BoundedQueueEvictsOldest)
{
    PlatformOptions opts;
    opts.overload.queue.depthCap = 4;
    opts.overload.queue.evictOldest = true;
    Platform p(2, std::move(opts));
    runBurst(p);

    const auto &m = p.totalMetrics();
    EXPECT_GT(m.queueEvictions(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_TRUE(p.auditConservation());
}

TEST(PlatformOverloadTest, BreakerOpensUnderOverloadAndSheds)
{
    PlatformOptions opts;
    opts.overload.breaker.enabled = true;
    opts.overload.breaker.window = 2 * kTicksPerSec;
    opts.overload.breaker.minSamples = 10;
    opts.overload.breaker.openThreshold = 0.3;
    opts.overload.breaker.openDuration = kTicksPerSec;
    Platform p(2, std::move(opts));
    // Drops while new capacity is still warming are provisioning
    // artifacts and bypass the breaker, so the load must exceed what
    // the *full* cluster can serve: saturated, nothing left to launch,
    // drops attributable to genuine overload.
    runBurst(p, 8000.0);

    const auto &m = p.totalMetrics();
    EXPECT_GE(m.breakerOpens(), 1);
    EXPECT_GT(m.breakerSheds(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(PlatformOverloadTest, BreakerEventsReachTheTracer)
{
    PlatformOptions opts;
    opts.obs.trace.sampleRate = 1.0;
    opts.obs.trace.capacity = 1 << 18;
    opts.overload.breaker.enabled = true;
    opts.overload.breaker.window = 2 * kTicksPerSec;
    opts.overload.breaker.minSamples = 10;
    opts.overload.breaker.openThreshold = 0.3;
    opts.overload.breaker.openDuration = kTicksPerSec;
    Platform p(2, std::move(opts));
    runBurst(p, 8000.0); // past full-cluster capacity; see above
    int opens = 0, sheds = 0;
    for (const SpanRecord &rec : p.tracer().snapshot()) {
        if (rec.kind == SpanKind::BreakerOpen) {
            ++opens;
            EXPECT_EQ(rec.function, 0);
        }
        if (rec.kind == SpanKind::Shed)
            ++sheds;
    }
    EXPECT_GE(opens, 1);
    EXPECT_GT(sheds, 0);
}

TEST(PlatformOverloadTest, BrownoutEngagesUnderSustainedPressure)
{
    PlatformOptions opts;
    opts.overload.brownout.enabled = true;
    opts.overload.brownout.minSamples = 30;
    opts.overload.brownout.enterThreshold = 0.10;
    opts.overload.brownout.minHold = 2 * kTicksPerSec;
    Platform p(2, std::move(opts));
    runBurst(p);

    const auto &m = p.totalMetrics();
    EXPECT_GE(m.brownoutEntries(), 1);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(PlatformOverloadTest, RetryBudgetCapsFailoverStorm)
{
    PlatformOptions opts;
    opts.overload.retryBudget.enabled = true;
    opts.overload.retryBudget.burst = 0.0; // deny every failover
    Platform p(2, std::move(opts));

    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(200.0, 20 * kTicksPerSec));
    p.run(10 * kTicksPerSec);
    p.injectServerCrash(0);
    p.run(30 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    // The crash loses queued/in-flight requests; with an empty budget
    // each failover is denied and dropped instead of re-dispatched.
    EXPECT_GT(m.retryBudgetExhausted(), 0);
    EXPECT_EQ(m.retries(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(PlatformOverloadTest, FullStackHoldsConservationUnderBurst)
{
    PlatformOptions opts;
    opts.overload = OverloadConfig::fullStack();
    Platform p(2, std::move(opts));
    runBurst(p, 3000.0);

    std::string diag;
    EXPECT_TRUE(p.auditConservation(&diag)) << diag;
    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_GT(m.completions(), 0);
}

TEST(PlatformOverloadTest, SnapshotMirrorsFunctionCounters)
{
    PlatformOptions opts;
    opts.overload.admission.enabled = true;
    Platform p(2, std::move(opts));
    runBurst(p);

    auto snap = p.overloadSnapshot(0);
    const auto &fm = p.functionMetrics(0);
    EXPECT_EQ(snap.sheds, fm.sheds());
    EXPECT_EQ(snap.breakerSheds, fm.breakerSheds());
    EXPECT_EQ(snap.queueEvictions, fm.queueEvictions());
    EXPECT_EQ(snap.retryBudgetExhausted, fm.retryBudgetExhausted());
    EXPECT_EQ(snap.breakerState, BreakerState::Closed);
}

TEST(PlatformOverloadTest, UnbindableAdaptiveLimiterIsBitIdentical)
{
    Platform plain(2);
    runBurst(plain);

    // Adaptive mode with a limit pinned so high it can never bind: the
    // gate admits everything, the estimator consumes samples, and the
    // simulation must not notice — limiter bookkeeping is pure
    // observation until the limit actually rejects a request.
    PlatformOptions opts;
    opts.overload.mode = infless::overload::AdmissionMode::Adaptive;
    opts.overload.adaptive.minLimit = 1e9;
    opts.overload.adaptive.maxLimit = 1e9;
    opts.overload.adaptive.initialLimit = 1e9;
    Platform inert(2, std::move(opts));
    runBurst(inert);

    EXPECT_EQ(metricTuple(plain), metricTuple(inert));
    auto snap = inert.overloadSnapshot(0);
    EXPECT_EQ(snap.limiterSheds, 0);
    EXPECT_EQ(snap.limiterInFlight, 0); // every slot released at drain
}

TEST(PlatformOverloadTest, AdaptiveLimiterShedsUnderBurstAndConserves)
{
    PlatformOptions opts;
    opts.overload.mode = infless::overload::AdmissionMode::Adaptive;
    // The saturated-fixture configuration: with growth frozen per
    // backoff cooldown the limit can actually descend to the binding
    // point instead of being regrown by the healthy majority.
    opts.overload.adaptive.growthFreeze = true;
    Platform p(2, std::move(opts));
    // Past full-cluster capacity: after the warmup quota the learned
    // limit binds against the saturated fleet and the gate sheds.
    runBurst(p, 8000.0);

    const auto &m = p.totalMetrics();
    auto snap = p.overloadSnapshot(0);
    EXPECT_GT(snap.limiterSheds, 0);
    EXPECT_GT(snap.limiterBackoffs, 0);
    EXPECT_GT(snap.limit, 0.0);
    EXPECT_GT(snap.limiterMinRtt, 0);
    // Limiter sheds are drops: conservation holds with slots balanced.
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_TRUE(p.auditConservation());
    EXPECT_EQ(snap.limiterInFlight, 0); // all slots released at drain
}

TEST(PlatformOverloadTest, SnapshotMirrorsLimiterCounters)
{
    PlatformOptions opts;
    opts.overload.mode = infless::overload::AdmissionMode::Adaptive;
    Platform p(2, std::move(opts));
    runBurst(p, 8000.0);

    auto snap = p.overloadSnapshot(0);
    const auto &fm = p.functionMetrics(0);
    EXPECT_EQ(snap.limiterSheds, fm.limiterSheds());
    EXPECT_EQ(snap.limiterBackoffs, fm.limiterBackoffs());
    // One deployed function: totals agree with the per-function view.
    EXPECT_EQ(p.totalMetrics().limiterSheds(), fm.limiterSheds());
}

TEST(PlatformOverloadTest, LimiterShedSpansReachTheTracer)
{
    PlatformOptions opts;
    opts.obs.trace.sampleRate = 1.0;
    opts.obs.trace.capacity = 1 << 18;
    opts.overload.mode = infless::overload::AdmissionMode::Adaptive;
    opts.overload.adaptive.growthFreeze = true; // make the limit bind
    Platform p(2, std::move(opts));
    runBurst(p, 8000.0);

    int limiter_sheds = 0;
    for (const SpanRecord &rec : p.tracer().snapshot())
        if (rec.kind == SpanKind::LimiterShed)
            ++limiter_sheds;
    EXPECT_GT(limiter_sheds, 0);
}

TEST(PlatformOverloadTest, FaithfulProfileErrorConfigIsBitIdentical)
{
    Platform plain(2);
    runBurst(plain);

    // factor 1.0 + jitter 0: the fault is disabled and the platform
    // must not even install the distortion hook.
    PlatformOptions opts;
    opts.faults.profileError.factor = 1.0;
    Platform faithful(2, std::move(opts));
    runBurst(faithful);
    EXPECT_EQ(metricTuple(plain), metricTuple(faithful));
}

TEST(PlatformOverloadTest, MispredictedProfileShiftsControlDecisions)
{
    Platform honest(2);
    runBurst(honest);

    // A pessimistic profiler changes what the scheduler provisions and
    // what the dispatcher batches — outcomes must move while execution
    // ground truth (and conservation) stay intact.
    PlatformOptions opts;
    opts.faults.profileError.factor = 1.5;
    Platform lying(2, std::move(opts));
    runBurst(lying);

    const auto &lm = lying.totalMetrics();
    EXPECT_NE(honest.totalMetrics().completions(), lm.completions());
    EXPECT_EQ(lm.completions() + lm.drops(), lm.arrivals());
    EXPECT_TRUE(lying.auditConservation());
}

TEST(PlatformOverloadTest, AdaptiveHoldsGoodputUnderLyingProfiler)
{
    // The robustness claim at platform scale: with the profiler lying
    // 1.5x high, the feedback limiter must not cost more than a sliver
    // of the goodput an undefended platform gets — its shed decisions
    // never consult the lying surface. (The bench's 3-way gate makes
    // the adaptive-vs-static comparison at the calibrated knee.)
    PlatformOptions adaptive_opts;
    adaptive_opts.overload.mode =
        infless::overload::AdmissionMode::Adaptive;
    adaptive_opts.faults.profileError.factor = 1.5;
    Platform adaptive(2, std::move(adaptive_opts));
    runBurst(adaptive, 8000.0);

    PlatformOptions none_opts;
    none_opts.faults.profileError.factor = 1.5;
    Platform none(2, std::move(none_opts));
    runBurst(none, 8000.0);

    auto goodput = [](const Platform &p) {
        const auto &m = p.totalMetrics();
        return m.completions() - m.sloViolations();
    };
    EXPECT_GE(static_cast<double>(goodput(adaptive)),
              0.98 * static_cast<double>(goodput(none)));
}

} // namespace
