/**
 * @file
 * Tests for the INFless platform end-to-end behaviour on small runs.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "core/platform.hh"
#include "workload/generators.hh"

namespace {

using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::core::PlatformOptions;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::constantRate;
using infless::workload::uniformArrivals;

FunctionSpec
resnetSpec(Tick slo = msToTicks(200))
{
    FunctionSpec spec;
    spec.name = "resnet";
    spec.model = "ResNet-50";
    spec.sloTicks = slo;
    return spec;
}

TEST(PlatformTest, DeployValidatesModel)
{
    Platform p(2);
    EXPECT_THROW(
        p.deploy(FunctionSpec{"x", "NoSuchModel", msToTicks(100), 8}),
        infless::sim::FatalError);
    EXPECT_EQ(p.deploy(resnetSpec()), 0);
    EXPECT_EQ(p.functionCount(), 1u);
}

TEST(PlatformTest, IdleRunHasNoActivity)
{
    Platform p(2);
    p.deploy(resnetSpec());
    p.run(10 * kTicksPerSec);
    EXPECT_EQ(p.totalMetrics().arrivals(), 0);
    EXPECT_EQ(p.totalLaunches(), 0);
    EXPECT_EQ(p.liveInstanceCount(), 0);
}

TEST(PlatformTest, ServesConstantLoadWithinSlo)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(50.0, 2 * kTicksPerMin));
    p.run(2 * kTicksPerMin + 5 * kTicksPerSec);

    const auto &m = p.totalMetrics();
    EXPECT_GT(m.arrivals(), 5000);
    // Nearly everything completes (tail may still be in flight).
    EXPECT_GT(m.completions(), m.arrivals() * 9 / 10);
    // SLO violations are confined to the cold-start ramp.
    EXPECT_LT(m.sloViolationRate(), 0.10);
    EXPECT_GT(p.totalLaunches(), 0);
}

TEST(PlatformTest, RequestsAreConserved)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(80.0, kTicksPerMin));
    p.run(kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    // completed + dropped + still-in-flight == arrivals; after the grace
    // window nothing should be in flight under steady load.
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(PlatformTest, BatchingAggregatesRequests)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(100.0, kTicksPerMin));
    p.run(kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    // Under 100 RPS the batcher should aggregate multiple requests.
    EXPECT_GT(m.meanBatchFill(), 1.5);
    EXPECT_LT(m.batches(), m.completions());
}

TEST(PlatformTest, ColdStartsOnlyAtRampUp)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(40.0, 2 * kTicksPerMin));
    p.run(2 * kTicksPerMin);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.coldLaunches(), 0);
    // Under steady load instances stay warm: few launches overall.
    EXPECT_LT(m.launches(), 30);
}

TEST(PlatformTest, ScalesInAfterLoadDrops)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    // 1 minute of load, then nothing.
    p.injectTrace(fn, uniformArrivals(100.0, kTicksPerMin));
    p.run(kTicksPerMin);
    int peak = p.liveInstanceCount();
    EXPECT_GT(peak, 0);
    p.run(20 * kTicksPerMin);
    EXPECT_LT(p.liveInstanceCount(), peak);
}

TEST(PlatformTest, PerFunctionMetricsSeparateWorkloads)
{
    Platform p(4);
    auto heavy = p.deploy(resnetSpec());
    FunctionSpec mnist{"mnist", "MNIST", msToTicks(50), 32};
    auto light = p.deploy(mnist);
    p.injectTrace(heavy, uniformArrivals(30.0, kTicksPerMin));
    p.injectTrace(light, uniformArrivals(10.0, kTicksPerMin));
    p.run(kTicksPerMin + 5 * kTicksPerSec);
    EXPECT_GT(p.functionMetrics(heavy).arrivals(), 1500);
    EXPECT_GT(p.functionMetrics(light).arrivals(), 500);
    EXPECT_EQ(p.functionMetrics(heavy).arrivals() +
                  p.functionMetrics(light).arrivals(),
              p.totalMetrics().arrivals());
}

TEST(PlatformTest, ConfigUsageRecordsNonUniformLaunches)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(150.0, kTicksPerMin));
    p.run(kTicksPerMin);
    auto usage = p.configUsage(fn);
    EXPECT_FALSE(usage.empty());
    std::int64_t launches = 0;
    for (const auto &u : usage)
        launches += u.launches;
    EXPECT_EQ(launches, p.totalLaunches());
}

TEST(PlatformTest, ClusterAllocationsBalanceAtQuiescence)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(60.0, 30 * kTicksPerSec));
    // Run far past all keep-alive windows.
    p.run(4 * 60 * kTicksPerMin);
    EXPECT_EQ(p.liveInstanceCount(), 0);
    EXPECT_TRUE(p.cluster().totalAllocated().isZero());
}

TEST(PlatformTest, InfeasibleSloDropsRequests)
{
    PlatformOptions opts;
    Platform p(4, opts);
    auto fn = p.deploy(FunctionSpec{"bert", "Bert-v1", msToTicks(5), 32});
    p.injectTrace(fn, uniformArrivals(10.0, 10 * kTicksPerSec));
    p.run(20 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_EQ(m.completions(), 0);
    EXPECT_EQ(m.drops(), m.arrivals());
}

TEST(PlatformTest, TightSloUsesSmallerBatches)
{
    Platform tight(4), loose(4);
    auto ft = tight.deploy(resnetSpec(msToTicks(120)));
    auto fl = loose.deploy(resnetSpec(msToTicks(400)));
    tight.injectTrace(ft, uniformArrivals(100.0, kTicksPerMin));
    loose.injectTrace(fl, uniformArrivals(100.0, kTicksPerMin));
    tight.run(kTicksPerMin + 5 * kTicksPerSec);
    loose.run(kTicksPerMin + 5 * kTicksPerSec);
    EXPECT_LE(tight.totalMetrics().meanBatchFill(),
              loose.totalMetrics().meanBatchFill() + 0.5);
}

TEST(PlatformTest, DeterministicUnderSeed)
{
    auto run_once = [](std::uint64_t seed) {
        PlatformOptions opts;
        opts.seed = seed;
        Platform p(4, opts);
        auto fn = p.deploy(resnetSpec());
        p.injectRateSeries(fn, constantRate(60.0, 30 * kTicksPerSec));
        p.run(40 * kTicksPerSec);
        return p.totalMetrics().completions();
    };
    EXPECT_EQ(run_once(5), run_once(5));
}

TEST(PlatformTest, InstanceSnapshotsReflectLiveFleet)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectTrace(fn, uniformArrivals(100.0, 30 * kTicksPerSec));
    p.run(30 * kTicksPerSec);
    auto snapshots = p.instanceSnapshots(fn);
    ASSERT_EQ(static_cast<int>(snapshots.size()),
              p.liveInstanceCount(fn));
    for (const auto &snap : snapshots) {
        EXPECT_EQ(snap.function, fn);
        EXPECT_GE(snap.server, 0);
        EXPECT_GT(snap.rUp, 0.0);
        EXPECT_LE(snap.rLow, snap.rUp);
        EXPECT_LE(snap.queueDepth,
                  static_cast<std::size_t>(snap.config.batchSize));
        EXPECT_NE(snap.state, infless::cluster::InstanceState::Reaped);
    }
}

TEST(PlatformTest, RateSeriesInjectionApproximatesRate)
{
    Platform p(4);
    auto fn = p.deploy(resnetSpec());
    p.injectRateSeries(fn, constantRate(50.0, kTicksPerMin));
    p.run(kTicksPerMin);
    EXPECT_NEAR(static_cast<double>(p.totalMetrics().arrivals()), 3000.0,
                300.0);
}

} // namespace
