/**
 * @file
 * Unit tests for Eq. 1 (per-instance rate bounds).
 */

#include <gtest/gtest.h>

#include "core/rps_bounds.hh"
#include "sim/logging.hh"

namespace {

using infless::core::execFeasible;
using infless::core::rpsBounds;
using infless::sim::msToTicks;

TEST(RpsBoundsTest, PaperExample)
{
    // §3.2: SLO 200ms, t_exec 50ms, b=4 -> [28, 80] RPS.
    auto bounds = rpsBounds(msToTicks(50), msToTicks(200), 4);
    EXPECT_DOUBLE_EQ(bounds.up, 80.0);
    EXPECT_DOUBLE_EQ(bounds.low, 28.0);
    EXPECT_TRUE(bounds.valid());
}

TEST(RpsBoundsTest, BatchOneHasNoLowerBound)
{
    auto bounds = rpsBounds(msToTicks(150), msToTicks(200), 1);
    EXPECT_DOUBLE_EQ(bounds.low, 0.0);
    EXPECT_DOUBLE_EQ(bounds.up, 6.0); // floor(1/0.15) = 6
}

TEST(RpsBoundsTest, FeasibilityRules)
{
    // b=1: anything up to the SLO is feasible.
    EXPECT_TRUE(execFeasible(msToTicks(200), msToTicks(200), 1));
    EXPECT_FALSE(execFeasible(msToTicks(201), msToTicks(200), 1));
    // b>1: t_exec must not exceed slo/2.
    EXPECT_TRUE(execFeasible(msToTicks(100), msToTicks(200), 4));
    EXPECT_FALSE(execFeasible(msToTicks(101), msToTicks(200), 4));
}

TEST(RpsBoundsTest, DegenerateInputsInfeasible)
{
    EXPECT_FALSE(execFeasible(0, msToTicks(200), 4));
    EXPECT_FALSE(execFeasible(msToTicks(10), 0, 4));
    EXPECT_FALSE(execFeasible(msToTicks(10), msToTicks(200), 0));
}

TEST(RpsBoundsTest, InfeasibleConfigPanics)
{
    EXPECT_THROW(rpsBounds(msToTicks(150), msToTicks(200), 4),
                 infless::sim::PanicError);
}

TEST(RpsBoundsTest, UpperBoundScalesWithBatch)
{
    auto b4 = rpsBounds(msToTicks(50), msToTicks(200), 4);
    auto b8 = rpsBounds(msToTicks(50), msToTicks(200), 8);
    EXPECT_DOUBLE_EQ(b8.up, 2.0 * b4.up);
}

TEST(RpsBoundsTest, TightSlackRaisesLowerBound)
{
    // Same execution time; a tighter SLO leaves less batch-fill slack, so
    // saturating the batch requires a higher arrival rate.
    auto loose = rpsBounds(msToTicks(60), msToTicks(200), 4);
    auto tight = rpsBounds(msToTicks(60), msToTicks(150), 4);
    EXPECT_GT(tight.low, loose.low);
}

TEST(RpsBoundsTest, BoundaryExecHalfSlo)
{
    // t_exec == slo/2 exactly: r_low == r_up boundary case must hold
    // low <= up.
    auto bounds = rpsBounds(msToTicks(100), msToTicks(200), 8);
    EXPECT_LE(bounds.low, bounds.up);
    EXPECT_TRUE(bounds.valid());
}

TEST(RpsBoundsTest, SlowExecutionYieldsZeroUpperBound)
{
    // t_exec over a second: floor(1/t) = 0 -> up = 0, invalid for use.
    auto bounds = rpsBounds(msToTicks(1500), msToTicks(3000), 2);
    EXPECT_DOUBLE_EQ(bounds.up, 0.0);
    EXPECT_FALSE(bounds.valid());
}

} // namespace
