/**
 * @file
 * Equivalence property of the scheduler fast path: the capacity-indexed
 * schedule() must produce LaunchPlan sequences bit-identical to the
 * O(servers)-per-placement scheduleNaive() reference, across randomized
 * (model, slo, rps, cluster-occupancy) cases and every ablation flag.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/topology.hh"
#include "core/scheduler.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace {

namespace cluster = infless::cluster;

using cluster::Cluster;
using cluster::Resources;
using infless::core::GreedyScheduler;
using infless::core::LaunchPlan;
using infless::core::SchedulerConfig;
using infless::models::ExecModel;
using infless::models::ModelZoo;
using infless::profiler::CopPredictor;
using infless::profiler::OpProfileDb;
using infless::sim::msToTicks;
using infless::sim::Rng;

void
expectIdenticalPlans(const std::vector<LaunchPlan> &fast,
                     const std::vector<LaunchPlan> &naive,
                     const std::string &context)
{
    ASSERT_EQ(fast.size(), naive.size()) << context;
    for (std::size_t i = 0; i < fast.size(); ++i) {
        SCOPED_TRACE(context + " plan #" + std::to_string(i));
        EXPECT_EQ(fast[i].server, naive[i].server);
        EXPECT_EQ(fast[i].config, naive[i].config);
        EXPECT_EQ(fast[i].execPredicted, naive[i].execPredicted);
        // Bit-identical, not approximately equal.
        EXPECT_EQ(fast[i].bounds.up, naive[i].bounds.up);
        EXPECT_EQ(fast[i].bounds.low, naive[i].bounds.low);
    }
}

/** Occupy the cluster with random allocations so classes fragment. */
void
randomOccupancy(Cluster &c, Rng &rng, double fill_probability)
{
    for (cluster::ServerId id = 0;
         id < static_cast<cluster::ServerId>(c.size()); ++id) {
        while (rng.uniform() < fill_probability) {
            Resources req{rng.uniformInt(0, 7) * 1000,
                          rng.uniformInt(0, 8) * 10,
                          rng.uniformInt(1, 32) * 1024};
            if (req.isZero() || !c.server(id).canFit(req))
                break;
            ASSERT_TRUE(c.allocate(id, req));
        }
    }
    ASSERT_TRUE(c.capacityIndex().consistentWith(c.servers()));
}

struct EquivalenceFixture : ::testing::Test
{
    ExecModel exec;
    OpProfileDb db{exec};
    CopPredictor cop{db};
    const ModelZoo &zoo = ModelZoo::shared();

    void
    runRandomizedCases(const SchedulerConfig &cfg, std::uint64_t seed,
                       int cases)
    {
        GreedyScheduler sched(cop, cfg);
        Rng rng(seed);
        const std::vector<const char *> names = {
            "ResNet-50", "MobileNet", "VGGNet", "LSTM-2365", "TextCNN-69"};
        const std::vector<int> slos_ms = {50, 100, 200, 500};
        for (int i = 0; i < cases; ++i) {
            const auto &model = zoo.get(
                names[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(names.size()) - 1))]);
            auto slo = msToTicks(slos_ms[static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(slos_ms.size()) -
                                   1))]);
            double rps = rng.uniform(0.5, 3000.0);
            int max_batch = 1 << rng.uniformInt(0, 5);
            auto servers = rng.uniformInt(1, 24);

            Cluster base(static_cast<std::size_t>(servers));
            randomOccupancy(base, rng, 0.4);

            Cluster for_fast = base;
            Cluster for_naive = base;
            auto fast =
                sched.schedule(model, rps, slo, max_batch, for_fast);
            auto naive = sched.scheduleNaive(model, rps, slo, max_batch,
                                             for_naive);
            std::string context =
                std::string(model.name) + " slo=" + std::to_string(slo) +
                " rps=" + std::to_string(rps) +
                " b<=" + std::to_string(max_batch) +
                " servers=" + std::to_string(servers) +
                " case=" + std::to_string(i);
            expectIdenticalPlans(fast, naive, context);
            // Both trajectories leave the cluster in the same state.
            EXPECT_EQ(for_fast.totalAllocated(),
                      for_naive.totalAllocated())
                << context;
            EXPECT_TRUE(for_fast.capacityIndex().consistentWith(
                for_fast.servers()))
                << context;
        }
    }
};

TEST_F(EquivalenceFixture, DefaultConfig)
{
    runRandomizedCases(SchedulerConfig{}, 1234, 60);
}

TEST_F(EquivalenceFixture, LargestBatchFirst)
{
    SchedulerConfig cfg;
    cfg.largestBatchFirst = true;
    runRandomizedCases(cfg, 2345, 40);
}

TEST_F(EquivalenceFixture, ThroughputOnly)
{
    SchedulerConfig cfg;
    cfg.throughputOnly = true;
    runRandomizedCases(cfg, 3456, 40);
}

TEST_F(EquivalenceFixture, UncappedEfficiency)
{
    SchedulerConfig cfg;
    cfg.uncappedEfficiency = true;
    runRandomizedCases(cfg, 4567, 40);
}

TEST_F(EquivalenceFixture, NoFragmentFloor)
{
    SchedulerConfig cfg;
    cfg.noFragmentFloor = true;
    runRandomizedCases(cfg, 5678, 40);
}

TEST_F(EquivalenceFixture, PaperLiteralAlgorithmOne)
{
    SchedulerConfig cfg;
    cfg.largestBatchFirst = true;
    cfg.uncappedEfficiency = true;
    cfg.noFragmentFloor = true;
    runRandomizedCases(cfg, 6789, 40);
}

TEST_F(EquivalenceFixture, SpreadScoringMatchesNaive)
{
    // Failure-domain anti-affinity: with domains assigned and a live
    // SpreadContext, the fast path must still match the reference
    // bit-for-bit — including the context mutations (each placement
    // feeds back into the next placement's penalty).
    SchedulerConfig cfg;
    cfg.spreadWeight = 0.5;
    GreedyScheduler sched(cop, cfg);
    Rng rng(7890);
    const std::vector<const char *> names = {"ResNet-50", "MobileNet",
                                             "VGGNet"};
    for (int i = 0; i < 40; ++i) {
        const auto &model = zoo.get(
            names[static_cast<std::size_t>(rng.uniformInt(0, 2))]);
        auto slo = msToTicks(100 + 100 * rng.uniformInt(0, 4));
        double rps = rng.uniform(0.5, 2000.0);
        auto servers = rng.uniformInt(2, 24);

        cluster::TopologyConfig topo;
        topo.zones = static_cast<std::int32_t>(rng.uniformInt(2, 4));
        topo.racksPerZone = static_cast<std::int32_t>(rng.uniformInt(1, 2));
        topo.rackSize = static_cast<std::int32_t>(rng.uniformInt(1, 3));

        Cluster base(static_cast<std::size_t>(servers));
        for (cluster::ServerId s = 0;
             s < static_cast<cluster::ServerId>(servers); ++s)
            base.setServerDomain(s, topo.domainOf(s));
        randomOccupancy(base, rng, 0.3);

        infless::core::SpreadContext spread;
        spread.weight = cfg.spreadWeight;
        // Pre-existing replicas bias some domains before this pass.
        for (int k = 0; k < rng.uniformInt(0, 6); ++k)
            spread.add(topo.domainOf(static_cast<cluster::ServerId>(
                rng.uniformInt(0, servers - 1))));

        Cluster for_fast = base;
        Cluster for_naive = base;
        infless::core::SpreadContext fast_ctx = spread;
        infless::core::SpreadContext naive_ctx = spread;
        auto fast =
            sched.schedule(model, rps, slo, 32, for_fast, &fast_ctx);
        auto naive = sched.scheduleNaive(model, rps, slo, 32, for_naive,
                                         &naive_ctx);
        std::string context = std::string(model.name) +
                              " rps=" + std::to_string(rps) +
                              " servers=" + std::to_string(servers) +
                              " spread case=" + std::to_string(i);
        expectIdenticalPlans(fast, naive, context);
        EXPECT_EQ(fast_ctx.zoneCount, naive_ctx.zoneCount) << context;
        EXPECT_EQ(fast_ctx.rackCount, naive_ctx.rackCount) << context;
        EXPECT_EQ(for_fast.totalAllocated(), for_naive.totalAllocated())
            << context;
    }
}

TEST_F(EquivalenceFixture, LargeHomogeneousClusterSingleClass)
{
    GreedyScheduler sched(cop);
    const auto &model = zoo.get("ResNet-50");
    Cluster base(256);
    EXPECT_EQ(base.capacityIndex().classCount(), 1u);

    Cluster for_fast = base;
    Cluster for_naive = base;
    auto fast =
        sched.schedule(model, 5000.0, msToTicks(200), 32, for_fast);
    auto naive = sched.scheduleNaive(model, 5000.0, msToTicks(200), 32,
                                     for_naive);
    expectIdenticalPlans(fast, naive, "homogeneous-256");
    EXPECT_FALSE(fast.empty());
}

} // namespace
