/**
 * @file
 * Tests for Algorithm 1: AvailableConfig feasibility, the e_ij metric,
 * and greedy placement.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "core/scheduler.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"
#include "sim/time.hh"

namespace {

namespace cluster = infless::cluster;

using infless::cluster::Cluster;
using infless::cluster::Resources;
using infless::cluster::Server;
using infless::core::CandidateConfig;
using infless::core::execFeasible;
using infless::core::GreedyScheduler;
using infless::core::LaunchPlan;
using infless::core::SchedulerConfig;
using infless::core::uniformSchedule;
using infless::models::ExecModel;
using infless::models::ModelZoo;
using infless::profiler::CopPredictor;
using infless::profiler::OpProfileDb;
using infless::sim::msToTicks;

struct SchedulerFixture : ::testing::Test
{
    ExecModel exec;
    OpProfileDb db{exec};
    CopPredictor cop{db};
    GreedyScheduler sched{cop};
    const ModelZoo &zoo = ModelZoo::shared();
};

TEST_F(SchedulerFixture, AvailableConfigsAreFeasible)
{
    const auto &resnet = zoo.get("ResNet-50");
    auto configs = sched.availableConfigs(resnet, 8, 200.0, msToTicks(200));
    EXPECT_FALSE(configs.empty());
    for (const auto &c : configs) {
        EXPECT_TRUE(execFeasible(c.execPredicted, msToTicks(200), 8));
        EXPECT_LE(c.bounds.low, 200.0); // saturation check passed
        EXPECT_TRUE(c.bounds.valid());
        EXPECT_EQ(c.config.batchSize, 8);
    }
}

TEST_F(SchedulerFixture, LowResidualRejectsBigBatches)
{
    const auto &resnet = zoo.get("ResNet-50");
    // 5 RPS cannot saturate batch-32 instances within the SLO.
    auto configs = sched.availableConfigs(resnet, 32, 5.0, msToTicks(200));
    EXPECT_TRUE(configs.empty());
}

TEST_F(SchedulerFixture, BatchOneIgnoresSaturation)
{
    const auto &resnet = zoo.get("ResNet-50");
    auto configs = sched.availableConfigs(resnet, 1, 0.5, msToTicks(200));
    EXPECT_FALSE(configs.empty());
}

TEST_F(SchedulerFixture, TightSloFiltersSlowConfigs)
{
    const auto &bert = zoo.get("Bert-v1");
    // 50ms SLO with batch 8: t_exec must be <= 25ms; BERT cannot do that
    // on the config grid.
    auto configs = sched.availableConfigs(bert, 8, 1000.0, msToTicks(50));
    EXPECT_TRUE(configs.empty());
}

TEST_F(SchedulerFixture, InstanceMemoryCoversModelAndRuntime)
{
    const auto &bert = zoo.get("Bert-v1");
    auto mem = sched.instanceMemoryMb(bert);
    EXPECT_GT(mem, static_cast<std::int64_t>(bert.sizeMb));
    EXPECT_LT(mem, 2000);
}

TEST_F(SchedulerFixture, EfficiencyPrefersSnugServers)
{
    const auto &resnet = zoo.get("ResNet-50");
    auto configs = sched.availableConfigs(resnet, 8, 500.0, msToTicks(200));
    ASSERT_FALSE(configs.empty());
    const auto &cand = configs.front();

    Server roomy(0, Resources{16'000, 200, 131'072});
    Server snug(1, Resources{16'000, 200, 131'072});
    // Pre-load the snug server so the candidate nearly fills it.
    Resources preload{16'000 - cand.config.resources.cpuMillicores - 500,
                      200 - cand.config.resources.gpuSmPercent - 5,
                      100'000};
    ASSERT_TRUE(snug.allocate(preload));

    double e_roomy = sched.efficiency(cand, roomy, 1.0, 500.0);
    double e_snug = sched.efficiency(cand, snug, 1.0, 500.0);
    EXPECT_GT(e_snug, e_roomy);
}

TEST_F(SchedulerFixture, EfficiencyNegativeWhenNoFit)
{
    const auto &resnet = zoo.get("ResNet-50");
    auto configs = sched.availableConfigs(resnet, 8, 500.0, msToTicks(200));
    ASSERT_FALSE(configs.empty());
    Server tiny(0, Resources{100, 1, 64});
    EXPECT_LT(sched.efficiency(configs.front(), tiny, 1.0, 500.0), 0.0);
}

TEST_F(SchedulerFixture, ScheduleCoversResidualRps)
{
    const auto &resnet = zoo.get("ResNet-50");
    Cluster cluster(8);
    auto plans =
        sched.schedule(resnet, 400.0, msToTicks(200), 32, cluster);
    ASSERT_FALSE(plans.empty());
    double covered = 0.0;
    for (const auto &plan : plans)
        covered += plan.bounds.up;
    EXPECT_GE(covered, 400.0);
}

TEST_F(SchedulerFixture, ScheduleCommitsAllocationsToCluster)
{
    const auto &resnet = zoo.get("ResNet-50");
    Cluster cluster(8);
    auto plans =
        sched.schedule(resnet, 200.0, msToTicks(200), 32, cluster);
    Resources allocated = cluster.totalAllocated();
    Resources expected;
    for (const auto &plan : plans)
        expected += plan.config.resources;
    EXPECT_EQ(allocated, expected);
}

TEST_F(SchedulerFixture, SchedulePrefersLargeBatchesAtHighRps)
{
    const auto &resnet = zoo.get("ResNet-50");
    Cluster cluster(8);
    auto plans =
        sched.schedule(resnet, 2000.0, msToTicks(200), 32, cluster);
    ASSERT_FALSE(plans.empty());
    // The first (largest-rate) placements use large batches.
    EXPECT_GE(plans.front().config.batchSize, 8);
}

TEST_F(SchedulerFixture, SchedulePicksSmallBatchesAtLowRps)
{
    const auto &resnet = zoo.get("ResNet-50");
    Cluster cluster(8);
    auto plans = sched.schedule(resnet, 3.0, msToTicks(200), 32, cluster);
    ASSERT_FALSE(plans.empty());
    for (const auto &plan : plans)
        EXPECT_LE(plan.config.batchSize, 4);
}

TEST_F(SchedulerFixture, ScheduleStopsWhenClusterExhausted)
{
    const auto &resnet = zoo.get("ResNet-50");
    Cluster cluster(1); // single server
    auto plans =
        sched.schedule(resnet, 100'000.0, msToTicks(200), 32, cluster);
    // Plans fit within one server's capacity, never beyond.
    Resources total = cluster.totalAllocated();
    EXPECT_TRUE(total.fitsIn(cluster.server(0).capacity()));
    EXPECT_FALSE(plans.empty());
}

TEST_F(SchedulerFixture, InfeasibleSloYieldsNoPlans)
{
    const auto &bert = zoo.get("Bert-v1");
    Cluster cluster(8);
    auto plans = sched.schedule(bert, 100.0, msToTicks(10), 32, cluster);
    EXPECT_TRUE(plans.empty());
    EXPECT_TRUE(cluster.totalAllocated().isZero());
}

TEST_F(SchedulerFixture, ThroughputOnlyAblationUsesFirstFit)
{
    SchedulerConfig cfg;
    cfg.throughputOnly = true;
    GreedyScheduler ablated(cop, cfg);
    const auto &resnet = zoo.get("ResNet-50");
    Cluster cluster(8);
    auto plans =
        ablated.schedule(resnet, 300.0, msToTicks(200), 32, cluster);
    ASSERT_FALSE(plans.empty());
    // First-fit places everything on the first server while it fits.
    EXPECT_EQ(plans.front().server, 0);
}

TEST_F(SchedulerFixture, UniformScheduleLaunchesCeilOfRate)
{
    CandidateConfig config;
    config.config = cluster::InstanceConfig{4, Resources{2000, 10, 1024}};
    config.execPredicted = msToTicks(50);
    config.bounds = {28.0, 80.0};
    Cluster cluster(4);
    auto plans = uniformSchedule(config, 200.0, cluster, false, 0.003,
                                 1024);
    EXPECT_EQ(plans.size(), 3u); // ceil(200/80)
    for (const auto &plan : plans)
        EXPECT_EQ(plan.config.batchSize, 4);
}

TEST_F(SchedulerFixture, UniformScheduleBestFitPacksTighter)
{
    CandidateConfig config;
    config.config = cluster::InstanceConfig{4, Resources{2000, 10, 1024}};
    config.bounds = {28.0, 80.0};
    Cluster cluster(4);
    // Preload server 2 so best-fit chooses it over empty servers.
    ASSERT_TRUE(cluster.allocate(2, Resources{12'000, 150, 1024}));
    auto plans =
        uniformSchedule(config, 50.0, cluster, true, 0.003, 1024);
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_EQ(plans[0].server, 2);
}

} // namespace
