/**
 * @file
 * Tests for the cell-partitioned control plane.
 *
 * The two determinism anchors from DESIGN.md 11: cells=1 is bit-identical
 * to a flat Platform, and a multi-cell run is byte-identical for every
 * worker-thread count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/platform.hh"
#include "core/sharded_platform.hh"
#include "obs/slo_monitor.hh"
#include "workload/generators.hh"

namespace {

using infless::core::CellOptions;
using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::core::PlatformOptions;
using infless::core::ShardedPlatform;
using infless::metrics::RunMetrics;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::constantRate;
using infless::workload::uniformArrivals;

FunctionSpec
spec(const std::string &name, const std::string &model)
{
    FunctionSpec s;
    s.name = name;
    s.model = model;
    s.sloTicks = msToTicks(200);
    return s;
}

/** Everything RunMetrics exposes, flattened for equality comparison. */
std::vector<double>
fingerprint(const RunMetrics &m, Tick end)
{
    return {
        static_cast<double>(m.arrivals()),
        static_cast<double>(m.completions()),
        static_cast<double>(m.drops()),
        static_cast<double>(m.sloViolations()),
        static_cast<double>(m.coldLaunches()),
        static_cast<double>(m.warmLaunches()),
        static_cast<double>(m.batches()),
        static_cast<double>(m.sheds()),
        m.meanBatchFill(),
        static_cast<double>(m.latency().count()),
        static_cast<double>(m.latency().min()),
        static_cast<double>(m.latency().max()),
        m.latency().mean(),
        static_cast<double>(m.latency().percentile(50)),
        static_cast<double>(m.latency().percentile(99)),
        static_cast<double>(m.queueTime().percentile(99)),
        static_cast<double>(m.execTime().percentile(99)),
        m.cpuCoreSeconds(end),
        m.gpuDeviceSeconds(end),
        m.memoryGbSeconds(end),
        m.meanInstances(end),
        static_cast<double>(m.execCacheHits()),
        static_cast<double>(m.execCacheMisses()),
    };
}

constexpr Tick kRunEnd = 30 * kTicksPerSec;

template <typename P>
void
driveWorkload(P &platform)
{
    auto fn0 = platform.deploy(spec("resnet", "ResNet-50"));
    auto fn1 = platform.deploy(spec("mobilenet", "MobileNet"));
    platform.injectTrace(fn0, uniformArrivals(60.0, 20 * kTicksPerSec));
    platform.injectRateSeries(fn1, constantRate(40.0, 20 * kTicksPerSec));
    platform.run(kRunEnd);
}

TEST(ShardedPlatform, Cells1IsBitIdenticalToFlatPlatform)
{
    PlatformOptions opts;
    opts.seed = 7;

    Platform flat(16, opts);
    driveWorkload(flat);

    CellOptions cells;
    cells.cells = 1;
    ShardedPlatform sharded(16, opts, cells);
    driveWorkload(sharded);

    EXPECT_EQ(fingerprint(flat.totalMetrics(), kRunEnd),
              fingerprint(sharded.totalMetrics(), kRunEnd));
    for (int fn = 0; fn < 2; ++fn)
        EXPECT_EQ(fingerprint(flat.functionMetrics(fn), kRunEnd),
                  fingerprint(sharded.functionMetrics(fn), kRunEnd));
    EXPECT_EQ(flat.liveInstanceCount(), sharded.liveInstanceCount());
    EXPECT_EQ(flat.simulation().events().executed(),
              sharded.eventsExecuted());
    EXPECT_EQ(flat.schedulerDecisions(), sharded.schedulerDecisions());
}

std::vector<double>
multiCellRun(std::size_t threads)
{
    PlatformOptions opts;
    opts.seed = 11;
    CellOptions cells;
    cells.cells = 4;
    cells.threads = threads;
    ShardedPlatform platform(16, opts, cells);
    driveWorkload(platform);
    auto fp = fingerprint(platform.totalMetrics(), kRunEnd);
    for (int fn = 0; fn < 2; ++fn) {
        auto ffp = fingerprint(platform.functionMetrics(fn), kRunEnd);
        fp.insert(fp.end(), ffp.begin(), ffp.end());
    }
    fp.push_back(static_cast<double>(platform.eventsExecuted()));
    fp.push_back(static_cast<double>(platform.schedulerDecisions()));
    for (std::size_t c = 0; c < 4; ++c)
        fp.push_back(static_cast<double>(platform.routedTo(c)));
    return fp;
}

TEST(ShardedPlatform, MultiCellByteIdenticalAcrossThreadCounts)
{
    auto serial = multiCellRun(1);
    EXPECT_EQ(serial, multiCellRun(2));
    EXPECT_EQ(serial, multiCellRun(4));
    EXPECT_EQ(serial, multiCellRun(0)); // pool default
}

TEST(ShardedPlatform, MultiCellConservesRequests)
{
    PlatformOptions opts;
    opts.seed = 3;
    CellOptions cells;
    cells.cells = 4;
    ShardedPlatform platform(16, opts, cells);
    driveWorkload(platform);
    const auto &m = platform.totalMetrics();
    EXPECT_GT(m.arrivals(), 1'000);
    // Every arrival is settled or verifiably in flight (a retry backoff
    // can legally straddle the run end), across all cells together.
    EXPECT_EQ(m.completions() + m.drops() + platform.inFlightRequests(),
              m.arrivals());
    // And the run is essentially drained: stragglers are rare.
    EXPECT_LE(platform.inFlightRequests(), 5);
}

TEST(ShardedPlatform, RouterSpreadsLoadOverCells)
{
    PlatformOptions opts;
    opts.seed = 5;
    CellOptions cells;
    cells.cells = 4;
    ShardedPlatform platform(16, opts, cells);
    driveWorkload(platform);
    std::int64_t total = 0;
    for (std::size_t c = 0; c < platform.cellCount(); ++c) {
        // No cell starves: p2c over fresh digests keeps the spread
        // within a factor of a few of uniform.
        EXPECT_GT(platform.routedTo(c), 0);
        total += platform.routedTo(c);
    }
    EXPECT_EQ(total, platform.totalMetrics().arrivals());
}

TEST(ShardedPlatform, MultiCellArrivalsMatchFlatForSameTrace)
{
    // The same pre-materialized trace must be fully ingested regardless
    // of the partitioning (routing changes placement, never volume).
    auto trace = uniformArrivals(80.0, 10 * kTicksPerSec);

    PlatformOptions opts;
    opts.seed = 13;
    Platform flat(8, opts);
    auto fn = flat.deploy(spec("resnet", "ResNet-50"));
    flat.injectTrace(fn, trace);
    flat.run(15 * kTicksPerSec);

    CellOptions cells;
    cells.cells = 2;
    ShardedPlatform sharded(8, opts, cells);
    auto sfn = sharded.deploy(spec("resnet", "ResNet-50"));
    sharded.injectTrace(sfn, trace);
    sharded.run(15 * kTicksPerSec);

    EXPECT_EQ(sharded.totalMetrics().arrivals(),
              flat.totalMetrics().arrivals());
}

TEST(ShardedPlatform, RepeatedRunsAdvanceTheWindowLoop)
{
    PlatformOptions opts;
    opts.seed = 17;
    CellOptions cells;
    cells.cells = 2;
    ShardedPlatform platform(8, opts, cells);
    auto fn = platform.deploy(spec("resnet", "ResNet-50"));
    platform.injectTrace(fn, uniformArrivals(50.0, 10 * kTicksPerSec));
    platform.run(5 * kTicksPerSec);
    std::int64_t mid = platform.totalMetrics().arrivals();
    EXPECT_GT(mid, 0);
    platform.run(15 * kTicksPerSec);
    const auto &m = platform.totalMetrics();
    EXPECT_GT(m.arrivals(), mid);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(ShardedPlatform, FaultCommandsApplyAtBarriers)
{
    PlatformOptions opts;
    opts.seed = 19;
    CellOptions cells;
    cells.cells = 2;
    ShardedPlatform platform(8, opts, cells);
    auto fn = platform.deploy(spec("resnet", "ResNet-50"));
    platform.injectTrace(fn, uniformArrivals(50.0, 10 * kTicksPerSec));
    // Server 6 lives in cell 1 ([4, 8)); crash it mid-run, recover later.
    platform.scheduleServerCrash(6, 2 * kTicksPerSec);
    platform.scheduleServerRecovery(6, 6 * kTicksPerSec);
    platform.run(15 * kTicksPerSec);

    const auto &m = platform.totalMetrics();
    EXPECT_EQ(m.serverCrashes(), 1);
    EXPECT_EQ(m.serverRecoveries(), 1);
    // The crash landed in the owning cell's shard.
    EXPECT_EQ(platform.cell(1).totalMetrics().serverCrashes(), 1);
    EXPECT_EQ(platform.cell(0).totalMetrics().serverCrashes(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
}

TEST(ShardedPlatform, CellSeedsDiverge)
{
    PlatformOptions opts;
    opts.seed = 23;
    CellOptions cells;
    cells.cells = 2;
    ShardedPlatform platform(8, opts, cells);
    // Different seeds per cell: their platforms draw independent RNG
    // streams (equal seeds would correlate keep-alive jitter etc.).
    EXPECT_NE(platform.cell(0).options().seed,
              platform.cell(1).options().seed);
    EXPECT_NE(platform.cell(0).options().seed, opts.seed);
}

std::vector<double>
multiCellFingerprint(const PlatformOptions &opts)
{
    CellOptions cells;
    cells.cells = 4;
    ShardedPlatform platform(16, opts, cells);
    driveWorkload(platform);
    return fingerprint(platform.totalMetrics(), kRunEnd);
}

TEST(ShardedPlatform, ZeroOverloadConfigIsBitIdenticalMultiCell)
{
    // The flat-platform inertness pin, repeated across cells: per-cell
    // control-plane state (breakers, budgets, limiters) must not leak
    // into any cell's event stream when tuned unreachable.
    PlatformOptions plain;
    plain.seed = 7;

    PlatformOptions inert = plain;
    inert.overload.admission.enabled = true;
    inert.overload.admission.slackFactor = 1e12;
    inert.overload.breaker.enabled = true;
    inert.overload.breaker.openThreshold = 1.5;
    inert.overload.retryBudget.enabled = true;
    inert.overload.brownout.enabled = true;
    inert.overload.brownout.enterThreshold = 1.5;
    EXPECT_EQ(multiCellFingerprint(plain), multiCellFingerprint(inert));

    // And the adaptive variant: a limit pinned too high to ever bind.
    PlatformOptions unbindable = plain;
    unbindable.overload.mode =
        infless::overload::AdmissionMode::Adaptive;
    unbindable.overload.adaptive.minLimit = 1e9;
    unbindable.overload.adaptive.maxLimit = 1e9;
    unbindable.overload.adaptive.initialLimit = 1e9;
    EXPECT_EQ(multiCellFingerprint(plain),
              multiCellFingerprint(unbindable));
}

std::vector<double>
adaptiveOverloadRun(std::size_t threads)
{
    PlatformOptions opts;
    opts.seed = 31;
    opts.overload.mode = infless::overload::AdmissionMode::Adaptive;
    // Saturated-fixture configuration so the per-cell limits actually
    // descend to the binding point and shed (see AdaptiveLimitConfig).
    opts.overload.adaptive.growthFreeze = true;
    CellOptions cells;
    cells.cells = 2;
    cells.threads = threads;
    ShardedPlatform platform(8, opts, cells);
    auto fn = platform.deploy(spec("resnet", "ResNet-50"));
    // Far past what 8 servers across 2 cells absorb within SLO (the
    // same saturation ratio the flat-platform limiter tests use):
    // per-cell limiters learn, back off, and shed independently.
    platform.injectTrace(fn,
                         uniformArrivals(32'000.0, 20 * kTicksPerSec));
    platform.run(kRunEnd);

    auto fp = fingerprint(platform.totalMetrics(), kRunEnd);
    auto snap = platform.overloadSnapshot(fn);
    fp.push_back(static_cast<double>(snap.limiterSheds));
    fp.push_back(static_cast<double>(snap.limiterBackoffs));
    fp.push_back(snap.limit);
    fp.push_back(static_cast<double>(snap.limiterMinRtt));

    // The aggregated view must be consistent with its parts: counters
    // sum across cells and match the merged run metrics.
    const RunMetrics &m = platform.totalMetrics();
    std::int64_t cell_sheds = 0;
    for (std::size_t c = 0; c < 2; ++c)
        cell_sheds += platform.cell(c).totalMetrics().limiterSheds();
    EXPECT_EQ(snap.limiterSheds, cell_sheds);
    EXPECT_EQ(snap.limiterSheds, m.limiterSheds());
    EXPECT_GT(snap.limiterSheds, 0);
    EXPECT_GT(snap.limiterBackoffs, 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    return fp;
}

TEST(ShardedPlatform, AdaptiveLimiterMergesAndStaysByteIdentical)
{
    auto serial = adaptiveOverloadRun(1);
    EXPECT_EQ(serial, adaptiveOverloadRun(2));
    EXPECT_EQ(serial, adaptiveOverloadRun(4));
}

// ---------------------------------------------------------------------------
// SLO health merge
// ---------------------------------------------------------------------------

/** Everything the health engine exposes, flattened for comparison. */
std::vector<double>
sloDigest(const infless::obs::SloHealthCore &health)
{
    std::vector<double> d;
    for (std::int32_t fn : health.functions()) {
        d.push_back(static_cast<double>(fn));
        d.push_back(static_cast<double>(health.sloOf(fn)));
        for (const infless::obs::WindowRow &row : health.closed(fn)) {
            d.push_back(static_cast<double>(row.start));
            d.push_back(static_cast<double>(row.completions));
            d.push_back(static_cast<double>(row.violations));
            d.push_back(static_cast<double>(row.drops));
            d.push_back(row.coldSum);
            d.push_back(row.queueSum);
            d.push_back(row.batchSum);
            d.push_back(row.execSum);
            d.push_back(row.burn);
        }
    }
    for (const infless::obs::SloAlert &alert : health.alerts()) {
        d.push_back(static_cast<double>(alert.function));
        d.push_back(static_cast<double>(alert.kind));
        d.push_back(static_cast<double>(alert.edge));
        d.push_back(static_cast<double>(alert.at));
        d.push_back(alert.burnRate);
        d.push_back(alert.meanCold);
        d.push_back(alert.meanQueue);
        d.push_back(alert.meanBatch);
        d.push_back(alert.meanExec);
    }
    d.push_back(static_cast<double>(health.alertsFired()));
    return d;
}

std::vector<double>
sloHealthRun(std::size_t threads)
{
    PlatformOptions opts;
    opts.seed = 29;
    opts.obs.slo.enabled = true;
    CellOptions cells;
    cells.cells = 4;
    cells.threads = threads;
    ShardedPlatform platform(16, opts, cells);
    driveWorkload(platform);

    // The merged rows account for every completion and drop the fleet
    // settled, across all cells together.
    const RunMetrics &m = platform.totalMetrics();
    std::int64_t completions = 0, drops = 0;
    for (std::int32_t fn : platform.sloHealth().functions()) {
        for (const auto &row : platform.sloHealth().closed(fn)) {
            completions += row.completions;
            drops += row.drops;
        }
    }
    EXPECT_EQ(completions, m.completions());
    EXPECT_EQ(drops, m.drops());
    EXPECT_FALSE(platform.sloHealth().closed(0).empty());
    return sloDigest(platform.sloHealth());
}

TEST(ShardedPlatform, SloHealthByteIdenticalAcrossThreadCounts)
{
    auto serial = sloHealthRun(1);
    EXPECT_EQ(serial, sloHealthRun(2));
    EXPECT_EQ(serial, sloHealthRun(4));
    EXPECT_EQ(serial, sloHealthRun(0)); // pool default
}

TEST(ShardedPlatform, Cells1SloHealthMatchesFlatPlatform)
{
    PlatformOptions opts;
    opts.seed = 7;
    opts.obs.slo.enabled = true;

    Platform flat(16, opts);
    driveWorkload(flat);

    CellOptions cells;
    cells.cells = 1;
    ShardedPlatform sharded(16, opts, cells);
    driveWorkload(sharded);

    // cells=1 delegates: the health view IS the flat monitor's, and the
    // enabled monitor leaves the run itself bit-identical.
    EXPECT_EQ(sloDigest(flat.sloMonitor()), sloDigest(sharded.sloHealth()));
    EXPECT_EQ(fingerprint(flat.totalMetrics(), kRunEnd),
              fingerprint(sharded.totalMetrics(), kRunEnd));
}

// ---------------------------------------------------------------------------
// Cell rebalancing
// ---------------------------------------------------------------------------

using infless::cluster::RebalanceConfig;

/** Affinity hotspot the router cannot steer: one function pinned to
 *  cell 0 at a rate far above the cell's share, plus routed background
 *  traffic keeping the other cells mildly busy. */
void
driveSkewedWorkload(ShardedPlatform &platform)
{
    auto hot = platform.deploy(spec("resnet", "ResNet-50"));
    auto bg = platform.deploy(spec("mobilenet", "MobileNet"));
    platform.pinFunction(hot, 0);
    platform.injectTrace(hot, uniformArrivals(120.0, 20 * kTicksPerSec));
    platform.injectRateSeries(bg, constantRate(20.0, 20 * kTicksPerSec));
}

std::vector<double>
skewedRun(std::size_t threads, const RebalanceConfig &rb)
{
    PlatformOptions opts;
    opts.seed = 41;
    CellOptions cells;
    cells.cells = 4;
    cells.threads = threads;
    cells.rebalance = rb;
    ShardedPlatform platform(16, opts, cells);
    driveSkewedWorkload(platform);
    platform.run(kRunEnd);

    auto fp = fingerprint(platform.totalMetrics(), kRunEnd);
    fp.push_back(static_cast<double>(platform.cellMigrations()));
    fp.push_back(static_cast<double>(platform.eventsExecuted()));
    fp.push_back(static_cast<double>(platform.schedulerDecisions()));
    for (std::size_t c = 0; c < platform.cellCount(); ++c) {
        fp.push_back(static_cast<double>(platform.cellServers(c)));
        fp.push_back(static_cast<double>(platform.routedTo(c)));
    }
    for (double i : platform.imbalanceHistory())
        fp.push_back(i);
    for (std::int64_t m : platform.migrationHistory())
        fp.push_back(static_cast<double>(m));
    return fp;
}

TEST(ShardedRebalance, OffIsBitIdenticalToStaticPartition)
{
    // Off must mean *absent*: carrying non-default thresholds in a
    // disabled config cannot perturb a single byte of the run.
    RebalanceConfig off;
    auto base = skewedRun(1, off);
    RebalanceConfig off_tuned;
    off_tuned.imbalanceHigh = 1.01;
    off_tuned.imbalanceLow = 1.0;
    off_tuned.hotWindows = 1;
    off_tuned.maxMigrationsPerWindow = 16;
    EXPECT_EQ(base, skewedRun(1, off_tuned));
}

TEST(ShardedRebalance, DisabledRecordsNothing)
{
    PlatformOptions opts;
    opts.seed = 41;
    CellOptions cells;
    cells.cells = 4;
    ShardedPlatform platform(16, opts, cells);
    driveSkewedWorkload(platform);
    platform.run(kRunEnd);
    EXPECT_EQ(platform.cellMigrations(), 0);
    EXPECT_TRUE(platform.imbalanceHistory().empty());
    EXPECT_TRUE(platform.migrationHistory().empty());
    EXPECT_EQ(platform.totalMetrics().cellMigrations(), 0);
}

TEST(ShardedRebalance, UnreachableThresholdIsInert)
{
    // The flat-platform inertness pattern: the subsystem runs (observes
    // every barrier) but its threshold can never bind, so the event
    // streams match the disabled run exactly.
    RebalanceConfig unreachable;
    unreachable.enabled = true;
    unreachable.imbalanceHigh = 1e18;
    unreachable.imbalanceLow = 1e17;

    auto build = [](const RebalanceConfig &rb) {
        PlatformOptions opts;
        opts.seed = 41;
        CellOptions cells;
        cells.cells = 4;
        cells.rebalance = rb;
        auto platform = std::make_unique<ShardedPlatform>(16, opts, cells);
        driveSkewedWorkload(*platform);
        platform->run(kRunEnd);
        return platform;
    };
    auto watching = build(unreachable);
    auto disabled = build(RebalanceConfig{});

    EXPECT_EQ(watching->cellMigrations(), 0);
    // It *did* observe every barrier (and saw the skew)...
    EXPECT_FALSE(watching->imbalanceHistory().empty());
    EXPECT_GT(watching->rebalancer().lastImbalance(), 1.0);
    // ...without perturbing a byte of the run.
    EXPECT_EQ(fingerprint(watching->totalMetrics(), kRunEnd),
              fingerprint(disabled->totalMetrics(), kRunEnd));
    EXPECT_EQ(watching->eventsExecuted(), disabled->eventsExecuted());
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(watching->routedTo(c), disabled->routedTo(c));
}

TEST(ShardedRebalance, PinnedHotspotPullsServersIntoTheStraggler)
{
    RebalanceConfig rb;
    rb.enabled = true;
    PlatformOptions opts;
    opts.seed = 41;
    CellOptions cells;
    cells.cells = 4;
    cells.rebalance = rb;
    ShardedPlatform platform(16, opts, cells);
    driveSkewedWorkload(platform);
    platform.run(kRunEnd);

    // The hotspot cell grew, the fleet is conserved, and the map is
    // internally consistent after the whole migration history.
    EXPECT_GT(platform.cellMigrations(), 0);
    EXPECT_GT(platform.cellServers(0), 4u);
    std::size_t total = 0;
    for (std::size_t c = 0; c < platform.cellCount(); ++c) {
        total += platform.cellServers(c);
        EXPECT_GE(platform.cellServers(c), 1u); // donor floor
    }
    EXPECT_EQ(total, 16u);
    EXPECT_TRUE(platform.membership().consistent());
    // Executed moves never exceed ordered ones (drain deferrals), and
    // the migration counter flows through the merged run metrics.
    EXPECT_LE(static_cast<std::uint64_t>(platform.cellMigrations()),
              platform.rebalancer().migrationsOrdered());
    EXPECT_EQ(platform.totalMetrics().cellMigrations(),
              platform.cellMigrations());
    EXPECT_EQ(platform.imbalanceHistory().size(),
              platform.migrationHistory().size());
    // Requests stay conserved through adoption/release churn.
    const RunMetrics &m = platform.totalMetrics();
    EXPECT_EQ(m.completions() + m.drops() + platform.inFlightRequests(),
              m.arrivals());
}

TEST(ShardedRebalance, OnIsByteIdenticalAcrossThreadCounts)
{
    RebalanceConfig rb;
    rb.enabled = true;
    // PinnedHotspotPullsServersIntoTheStraggler pins that this exact
    // (seed, workload, config) run migrates, so the identity below is
    // not vacuous.
    auto serial = skewedRun(1, rb);
    EXPECT_EQ(serial, skewedRun(2, rb));
    EXPECT_EQ(serial, skewedRun(4, rb));
    EXPECT_EQ(serial, skewedRun(0, rb)); // pool default
}

TEST(ShardedRebalance, FaultCommandsFollowMigratedServers)
{
    RebalanceConfig rb;
    rb.enabled = true;
    PlatformOptions opts;
    opts.seed = 41;
    CellOptions cells;
    cells.cells = 4;
    cells.rebalance = rb;
    ShardedPlatform platform(16, opts, cells);
    driveSkewedWorkload(platform);
    platform.run(15 * kTicksPerSec);

    // Pick a server that started outside cell 0 and migrated in.
    infless::cluster::ServerId migrated = infless::cluster::kNoServer;
    for (infless::cluster::ServerId g : platform.membership().members(0)) {
        if (g >= 4) {
            migrated = g;
            break;
        }
    }
    ASSERT_NE(migrated, infless::cluster::kNoServer)
        << "hotspot run produced no migration by 15s";

    // Crash/recover it by *global* id: the commands must land in the
    // receiving cell, not the donor slice the id was born in.
    platform.scheduleServerCrash(migrated, 16 * kTicksPerSec);
    platform.scheduleServerRecovery(migrated, 20 * kTicksPerSec);
    platform.run(kRunEnd);

    const RunMetrics &m = platform.totalMetrics();
    EXPECT_EQ(m.serverCrashes(), 1);
    EXPECT_EQ(m.serverRecoveries(), 1);
    EXPECT_EQ(platform.cell(0).totalMetrics().serverCrashes(), 1);
    std::size_t donor_cell = static_cast<std::size_t>(migrated) / 4;
    EXPECT_EQ(platform.cell(donor_cell).totalMetrics().serverCrashes(),
              0);
    // No server lost or duplicated through migrate + crash + recover.
    std::size_t total = 0;
    for (std::size_t c = 0; c < platform.cellCount(); ++c)
        total += platform.cellServers(c);
    EXPECT_EQ(total, 16u);
    EXPECT_TRUE(platform.membership().consistent());
}

TEST(ShardedRebalance, CrashMidDrainResolvesThroughLiveMembership)
{
    // Regression: a crash/recovery command targeting a server while a
    // migration order has it mid-drain (still hosting instances, so the
    // move was deferred) must resolve through the live membership map —
    // landing in whichever cell owns the machine at the barrier — and
    // the deferred move must not double-release the machine afterwards.
    RebalanceConfig rb;
    rb.enabled = true;
    PlatformOptions opts;
    opts.seed = 41;
    CellOptions cells;
    cells.cells = 4;
    cells.rebalance = rb;
    ShardedPlatform platform(16, opts, cells);
    // Heavy pinned traffic in EVERY cell: donor cells keep several busy
    // servers, so migration orders into the overloaded cell 0 outrun the
    // idle supply and fall back to the drain-and-move path.
    auto hot = platform.deploy(spec("hot", "ResNet-50"));
    platform.pinFunction(hot, 0);
    platform.injectTrace(hot, uniformArrivals(2000.0, 20 * kTicksPerSec));
    std::vector<infless::core::FunctionId> bgs;
    for (std::size_t c = 1; c <= 3; ++c) {
        auto bg = platform.deploy(
            spec("bg" + std::to_string(c), "ResNet-50"));
        platform.pinFunction(bg, c);
        platform.injectTrace(bg,
                             uniformArrivals(800.0, 20 * kTicksPerSec));
        bgs.push_back(bg);
    }

    // Step the run until an order has been deferred (ordered > executed)
    // and a donor-cell server is visibly draining.
    infless::cluster::ServerId victim = infless::cluster::kNoServer;
    Tick found_at = 0;
    for (Tick t = kTicksPerSec;
         t <= 20 * kTicksPerSec && victim == infless::cluster::kNoServer;
         t += kTicksPerSec / 4) {
        platform.run(t);
        if (platform.rebalancer().migrationsOrdered() <=
            static_cast<std::uint64_t>(platform.cellMigrations()))
            continue;
        for (std::size_t c = 1; c < platform.cellCount(); ++c) {
            for (auto fn : bgs) {
                for (const auto &snap :
                     platform.cell(c).instanceSnapshots(fn)) {
                    if (!snap.draining)
                        continue;
                    for (infless::cluster::ServerId g :
                         platform.membership().members(c)) {
                        if (platform.membership().localId(g) ==
                            snap.server) {
                            victim = g;
                            break;
                        }
                    }
                    if (victim != infless::cluster::kNoServer)
                        break;
                }
                if (victim != infless::cluster::kNoServer)
                    break;
            }
            if (victim != infless::cluster::kNoServer)
                break;
        }
        found_at = t;
    }
    ASSERT_NE(victim, infless::cluster::kNoServer)
        << "no drain-deferred migration observed by 20s";

    // Crash it mid-drain; the command resolves at the next barrier.
    platform.scheduleServerCrash(victim, found_at);
    platform.run(found_at + kTicksPerSec);
    // A down server can neither finish its drain nor be released, so
    // ownership is frozen where the crash landed.
    std::size_t owner = platform.membership().cellOf(victim);
    EXPECT_EQ(platform.cell(owner).totalMetrics().serverCrashes(), 1);
    EXPECT_EQ(platform.totalMetrics().serverCrashes(), 1);

    platform.scheduleServerRecovery(victim, found_at + 3 * kTicksPerSec);
    platform.run(kRunEnd);

    const RunMetrics &m = platform.totalMetrics();
    EXPECT_EQ(m.serverCrashes(), 1);
    EXPECT_EQ(m.serverRecoveries(), 1);
    // No machine lost or duplicated through order + drain + crash +
    // recover + (possibly) the deferred move finally executing.
    std::size_t total = 0;
    for (std::size_t c = 0; c < platform.cellCount(); ++c)
        total += platform.cellServers(c);
    EXPECT_EQ(total, 16u);
    EXPECT_TRUE(platform.membership().consistent());
    EXPECT_EQ(m.completions() + m.drops() + platform.inFlightRequests(),
              m.arrivals());
}

// ---------------------------------------------------------------------------
// Failure domains, gray failures, health ejection
// ---------------------------------------------------------------------------

TEST(ShardedDomains, ScriptedOutageSpansCellsAndMergesOnce)
{
    // Zone 0 of this layout is {0,1,2,6,7}: racks of 3 round-robin over
    // 2 zones, so the zone straddles the 2-cell partition ([0,4), [4,8)).
    PlatformOptions opts;
    opts.seed = 19;
    opts.topology.zones = 2;
    opts.topology.racksPerZone = 1;
    opts.topology.rackSize = 3;
    opts.faults.domainOutageAt = 5 * kTicksPerSec;
    opts.faults.domainOutageTarget = 0;
    opts.faults.domainOutageMttrSec = 5.0;
    CellOptions cells;
    cells.cells = 2;
    ShardedPlatform platform(8, opts, cells);
    auto fn = platform.deploy(spec("resnet", "ResNet-50"));
    platform.injectTrace(fn, uniformArrivals(50.0, 15 * kTicksPerSec));
    platform.run(20 * kTicksPerSec);

    const RunMetrics &m = platform.totalMetrics();
    // Every member of the zone crashed together — across both cells —
    // and repaired together.
    EXPECT_EQ(m.serverCrashes(), 5);
    EXPECT_EQ(m.serverRecoveries(), 5);
    EXPECT_EQ(platform.cell(0).totalMetrics().serverCrashes(), 3);
    EXPECT_EQ(platform.cell(1).totalMetrics().serverCrashes(), 2);
    // ...but it is ONE outage: the note lands on cell 0 only, so the
    // merged counter does not multiply by the number of cells touched.
    EXPECT_EQ(m.domainOutages(), 1);
    EXPECT_EQ(platform.cell(1).totalMetrics().domainOutages(), 0);
    EXPECT_EQ(m.completions() + m.drops() + platform.inFlightRequests(),
              m.arrivals());
}

std::vector<double>
chaosRun(std::size_t threads)
{
    PlatformOptions opts;
    opts.seed = 37;
    // Zones straddle cell boundaries (racks of 3 over a 4x4 partition).
    opts.topology.zones = 3;
    opts.topology.racksPerZone = 1;
    opts.topology.rackSize = 3;
    opts.faults.domainOutageAt = 5 * kTicksPerSec;
    opts.faults.domainOutageTarget = 1;
    opts.faults.domainOutageMttrSec = 5.0;
    opts.faults.grayFraction = 0.5;
    opts.faults.grayFactor = 4.0;
    opts.scheduler.spreadWeight = 0.5;
    opts.health.enabled = true;
    // Cells hold 4 servers each: the default 0.2 cap would floor to
    // zero slots, so give each cell one ejection slot.
    opts.health.maxEjectFraction = 0.3;
    CellOptions cells;
    cells.cells = 4;
    cells.threads = threads;
    ShardedPlatform platform(16, opts, cells);
    driveWorkload(platform);

    auto fp = fingerprint(platform.totalMetrics(), kRunEnd);
    const RunMetrics &m = platform.totalMetrics();
    fp.push_back(static_cast<double>(m.serverCrashes()));
    fp.push_back(static_cast<double>(m.serverRecoveries()));
    fp.push_back(static_cast<double>(m.domainOutages()));
    fp.push_back(static_cast<double>(m.healthEjections()));
    fp.push_back(static_cast<double>(m.healthReadmissions()));
    fp.push_back(static_cast<double>(m.grayDetections()));
    fp.push_back(static_cast<double>(platform.eventsExecuted()));
    fp.push_back(static_cast<double>(platform.schedulerDecisions()));
    for (std::size_t c = 0; c < platform.cellCount(); ++c) {
        fp.push_back(static_cast<double>(platform.routedTo(c)));
        fp.push_back(
            static_cast<double>(platform.cell(c).quarantinedServers()));
    }

    // Non-vacuity: the correlated outage fired and took servers down.
    EXPECT_EQ(m.domainOutages(), 1);
    EXPECT_GT(m.serverCrashes(), 0);
    EXPECT_EQ(m.completions() + m.drops() + platform.inFlightRequests(),
              m.arrivals());
    return fp;
}

TEST(ShardedDomains, ChaosRunByteIdenticalAcrossThreadCounts)
{
    // The full robustness stack at once — topology spread, a scripted
    // zone outage straddling cells, gray servers, per-cell health
    // ejection — stays byte-identical at every worker-thread count.
    auto serial = chaosRun(1);
    EXPECT_EQ(serial, chaosRun(2));
    EXPECT_EQ(serial, chaosRun(4));
    EXPECT_EQ(serial, chaosRun(0)); // pool default
}

TEST(ShardedRebalance, MigrationsEmitTraceInstants)
{
    RebalanceConfig rb;
    rb.enabled = true;
    PlatformOptions opts;
    opts.seed = 41;
    opts.obs.trace.sampleRate = 1.0;
    CellOptions cells;
    cells.cells = 4;
    cells.rebalance = rb;
    ShardedPlatform platform(16, opts, cells);
    driveSkewedWorkload(platform);
    platform.run(kRunEnd);

    ASSERT_GT(platform.cellMigrations(), 0);
    std::int64_t instants = 0;
    for (std::size_t c = 0; c < platform.cellCount(); ++c) {
        for (const auto &rec : platform.cell(c).tracer().snapshot()) {
            if (rec.kind == infless::obs::SpanKind::CellMigration)
                ++instants;
        }
    }
    // One instant per executed move, recorded on the receiving cell.
    EXPECT_EQ(instants, platform.cellMigrations());
}

} // namespace
