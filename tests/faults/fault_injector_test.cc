/**
 * @file
 * Tests for the deterministic fault injector: event scheduling,
 * determinism, horizon handling and RNG stream isolation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "faults/fault_injector.hh"
#include "sim/simulation.hh"

namespace {

using infless::cluster::ServerId;
using infless::faults::FaultInjector;
using infless::faults::FaultProfile;
using infless::sim::kTicksPerSec;
using infless::sim::Simulation;
using infless::sim::Tick;

struct Recorded
{
    std::vector<std::pair<Tick, ServerId>> crashes;
    std::vector<std::pair<Tick, ServerId>> recoveries;
};

Recorded
runInjector(std::uint64_t seed, const FaultProfile &profile,
            std::size_t servers, Tick until)
{
    Simulation sim(seed);
    FaultInjector injector(sim, profile, seed, servers);
    Recorded rec;
    injector.start(FaultInjector::Hooks{
        [&](ServerId id) { rec.crashes.emplace_back(sim.now(), id); },
        [&](ServerId id) { rec.recoveries.emplace_back(sim.now(), id); }});
    sim.runUntil(until);
    return rec;
}

FaultProfile
crashyProfile()
{
    FaultProfile profile;
    profile.serverMtbfSec = 20.0;
    profile.serverMttrSec = 5.0;
    return profile;
}

TEST(FaultProfileTest, EnabledFlags)
{
    FaultProfile off;
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.crashesEnabled());

    FaultProfile crash;
    crash.serverMtbfSec = 100.0;
    EXPECT_TRUE(crash.enabled());

    FaultProfile startup;
    startup.startupFailureProb = 0.1;
    EXPECT_TRUE(startup.enabled());
    EXPECT_FALSE(startup.crashesEnabled());

    FaultProfile straggler;
    straggler.stragglerProb = 0.1;
    straggler.stragglerFactor = 2.0;
    EXPECT_TRUE(straggler.enabled());
}

TEST(FaultInjectorTest, DisabledProfileSchedulesNothing)
{
    Recorded rec = runInjector(7, FaultProfile{}, 4, 600 * kTicksPerSec);
    EXPECT_TRUE(rec.crashes.empty());
    EXPECT_TRUE(rec.recoveries.empty());
}

TEST(FaultInjectorTest, CrashRecoveryCyclesAlternate)
{
    Recorded rec =
        runInjector(7, crashyProfile(), 4, 600 * kTicksPerSec);
    ASSERT_FALSE(rec.crashes.empty());
    ASSERT_FALSE(rec.recoveries.empty());
    // Every server alternates crash -> recovery -> crash...
    for (ServerId s = 0; s < 4; ++s) {
        std::vector<Tick> events;
        std::vector<bool> is_crash;
        for (const auto &[t, id] : rec.crashes)
            if (id == s) {
                events.push_back(t);
                is_crash.push_back(true);
            }
        for (const auto &[t, id] : rec.recoveries)
            if (id == s) {
                events.push_back(t);
                is_crash.push_back(false);
            }
        // Merge-sort by time and check alternation starting with a crash.
        std::vector<std::size_t> order(events.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return events[a] < events[b];
                  });
        for (std::size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(is_crash[order[i]], i % 2 == 0)
                << "server " << s << " event " << i;
    }
}

TEST(FaultInjectorTest, SameSeedSameSchedule)
{
    Recorded a = runInjector(42, crashyProfile(), 3, 300 * kTicksPerSec);
    Recorded b = runInjector(42, crashyProfile(), 3, 300 * kTicksPerSec);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.recoveries, b.recoveries);
    ASSERT_FALSE(a.crashes.empty());

    Recorded c = runInjector(43, crashyProfile(), 3, 300 * kTicksPerSec);
    EXPECT_NE(a.crashes, c.crashes);
}

TEST(FaultInjectorTest, CrashHorizonStopsNewCrashes)
{
    FaultProfile profile = crashyProfile();
    profile.crashHorizon = 100 * kTicksPerSec;
    Recorded rec = runInjector(7, profile, 4, 600 * kTicksPerSec);
    ASSERT_FALSE(rec.crashes.empty());
    for (const auto &[t, id] : rec.crashes)
        EXPECT_LE(t, profile.crashHorizon);
    // Recoveries may trail past the horizon (repairs always finish).
    EXPECT_GE(rec.recoveries.size(), rec.crashes.size() - 4u);
}

TEST(FaultInjectorTest, FaultStreamDoesNotTouchSimulationRng)
{
    // The workload streams fork off the simulation root RNG; constructing
    // and running an injector must leave that stream bit-identical.
    auto draws = [](bool with_faults) {
        Simulation sim(99);
        std::unique_ptr<FaultInjector> injector;
        if (with_faults) {
            FaultProfile profile;
            profile.serverMtbfSec = 20.0;
            profile.serverMttrSec = 5.0;
            profile.startupFailureProb = 0.5;
            profile.stragglerProb = 0.5;
            profile.stragglerFactor = 2.0;
            injector =
                std::make_unique<FaultInjector>(sim, profile, 99, 4);
            injector->start({});
            // Consume fault draws too: they must come from the private
            // streams, not the root.
            injector->startupFails();
            injector->stretchExec(1000);
            sim.runUntil(60 * kTicksPerSec);
        }
        std::vector<std::uint64_t> out;
        auto rng = sim.forkRng(0x1234);
        for (int i = 0; i < 8; ++i)
            out.push_back(
                static_cast<std::uint64_t>(rng.uniformInt(0, 1 << 30)));
        return out;
    };
    EXPECT_EQ(draws(false), draws(true));
}

TEST(FaultInjectorTest, StartupAndStragglerDraws)
{
    Simulation sim(5);
    FaultProfile profile;
    profile.startupFailureProb = 0.5;
    profile.stragglerProb = 0.5;
    profile.stragglerFactor = 3.0;
    FaultInjector injector(sim, profile, 5, 2);

    int failures = 0;
    for (int i = 0; i < 200; ++i)
        failures += injector.startupFails() ? 1 : 0;
    EXPECT_GT(failures, 50);
    EXPECT_LT(failures, 150);
    EXPECT_EQ(injector.startupFailureDraws(), failures);

    int stretched = 0;
    for (int i = 0; i < 200; ++i) {
        Tick t = injector.stretchExec(1000);
        EXPECT_TRUE(t == 1000 || t == 3000);
        stretched += t == 3000 ? 1 : 0;
    }
    EXPECT_GT(stretched, 50);
    EXPECT_LT(stretched, 150);
}

} // namespace
