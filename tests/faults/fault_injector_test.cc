/**
 * @file
 * Tests for the deterministic fault injector: event scheduling,
 * determinism, horizon handling and RNG stream isolation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "faults/fault_injector.hh"
#include "sim/simulation.hh"

namespace {

using infless::cluster::ServerId;
using infless::faults::FaultInjector;
using infless::faults::FaultProfile;
using infless::sim::kTicksPerSec;
using infless::sim::Simulation;
using infless::sim::Tick;

struct Recorded
{
    std::vector<std::pair<Tick, ServerId>> crashes;
    std::vector<std::pair<Tick, ServerId>> recoveries;
};

Recorded
runInjector(std::uint64_t seed, const FaultProfile &profile,
            std::size_t servers, Tick until)
{
    Simulation sim(seed);
    FaultInjector injector(sim, profile, seed, servers);
    Recorded rec;
    injector.start(FaultInjector::Hooks{
        [&](ServerId id) { rec.crashes.emplace_back(sim.now(), id); },
        [&](ServerId id) { rec.recoveries.emplace_back(sim.now(), id); }});
    sim.runUntil(until);
    return rec;
}

FaultProfile
crashyProfile()
{
    FaultProfile profile;
    profile.serverMtbfSec = 20.0;
    profile.serverMttrSec = 5.0;
    return profile;
}

TEST(FaultProfileTest, EnabledFlags)
{
    FaultProfile off;
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.crashesEnabled());

    FaultProfile crash;
    crash.serverMtbfSec = 100.0;
    EXPECT_TRUE(crash.enabled());

    FaultProfile startup;
    startup.startupFailureProb = 0.1;
    EXPECT_TRUE(startup.enabled());
    EXPECT_FALSE(startup.crashesEnabled());

    FaultProfile straggler;
    straggler.stragglerProb = 0.1;
    straggler.stragglerFactor = 2.0;
    EXPECT_TRUE(straggler.enabled());
}

TEST(FaultInjectorTest, DisabledProfileSchedulesNothing)
{
    Recorded rec = runInjector(7, FaultProfile{}, 4, 600 * kTicksPerSec);
    EXPECT_TRUE(rec.crashes.empty());
    EXPECT_TRUE(rec.recoveries.empty());
}

TEST(FaultInjectorTest, CrashRecoveryCyclesAlternate)
{
    Recorded rec =
        runInjector(7, crashyProfile(), 4, 600 * kTicksPerSec);
    ASSERT_FALSE(rec.crashes.empty());
    ASSERT_FALSE(rec.recoveries.empty());
    // Every server alternates crash -> recovery -> crash...
    for (ServerId s = 0; s < 4; ++s) {
        std::vector<Tick> events;
        std::vector<bool> is_crash;
        for (const auto &[t, id] : rec.crashes)
            if (id == s) {
                events.push_back(t);
                is_crash.push_back(true);
            }
        for (const auto &[t, id] : rec.recoveries)
            if (id == s) {
                events.push_back(t);
                is_crash.push_back(false);
            }
        // Merge-sort by time and check alternation starting with a crash.
        std::vector<std::size_t> order(events.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return events[a] < events[b];
                  });
        for (std::size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(is_crash[order[i]], i % 2 == 0)
                << "server " << s << " event " << i;
    }
}

TEST(FaultInjectorTest, SameSeedSameSchedule)
{
    Recorded a = runInjector(42, crashyProfile(), 3, 300 * kTicksPerSec);
    Recorded b = runInjector(42, crashyProfile(), 3, 300 * kTicksPerSec);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.recoveries, b.recoveries);
    ASSERT_FALSE(a.crashes.empty());

    Recorded c = runInjector(43, crashyProfile(), 3, 300 * kTicksPerSec);
    EXPECT_NE(a.crashes, c.crashes);
}

TEST(FaultInjectorTest, CrashHorizonStopsNewCrashes)
{
    FaultProfile profile = crashyProfile();
    profile.crashHorizon = 100 * kTicksPerSec;
    Recorded rec = runInjector(7, profile, 4, 600 * kTicksPerSec);
    ASSERT_FALSE(rec.crashes.empty());
    for (const auto &[t, id] : rec.crashes)
        EXPECT_LE(t, profile.crashHorizon);
    // Recoveries may trail past the horizon (repairs always finish).
    EXPECT_GE(rec.recoveries.size(), rec.crashes.size() - 4u);
}

TEST(FaultInjectorTest, FaultStreamDoesNotTouchSimulationRng)
{
    // The workload streams fork off the simulation root RNG; constructing
    // and running an injector must leave that stream bit-identical.
    auto draws = [](bool with_faults) {
        Simulation sim(99);
        std::unique_ptr<FaultInjector> injector;
        if (with_faults) {
            FaultProfile profile;
            profile.serverMtbfSec = 20.0;
            profile.serverMttrSec = 5.0;
            profile.startupFailureProb = 0.5;
            profile.stragglerProb = 0.5;
            profile.stragglerFactor = 2.0;
            injector =
                std::make_unique<FaultInjector>(sim, profile, 99, 4);
            injector->start({});
            // Consume fault draws too: they must come from the private
            // streams, not the root.
            injector->startupFails();
            injector->stretchExec(1000);
            sim.runUntil(60 * kTicksPerSec);
        }
        std::vector<std::uint64_t> out;
        auto rng = sim.forkRng(0x1234);
        for (int i = 0; i < 8; ++i)
            out.push_back(
                static_cast<std::uint64_t>(rng.uniformInt(0, 1 << 30)));
        return out;
    };
    EXPECT_EQ(draws(false), draws(true));
}

// Regression: crash substreams key on the server *id*, never on draw
// order, so growing the fleet must leave every existing server's whole
// crash/recovery history bit-identical. (The old fleet-size coupling
// drew all servers from one stream: adding a machine shifted everyone.)
TEST(FaultInjectorTest, FleetSizeDoesNotShiftExistingSchedules)
{
    Tick until = 600 * kTicksPerSec;
    Recorded small = runInjector(11, crashyProfile(), 4, until);
    Recorded big = runInjector(11, crashyProfile(), 9, until);
    ASSERT_FALSE(small.crashes.empty());

    auto only = [](const std::vector<std::pair<Tick, ServerId>> &events,
                   ServerId cap) {
        std::vector<std::pair<Tick, ServerId>> out;
        for (const auto &e : events)
            if (e.second < cap)
                out.push_back(e);
        return out;
    };
    EXPECT_EQ(small.crashes, only(big.crashes, 4));
    EXPECT_EQ(small.recoveries, only(big.recoveries, 4));
    // And the bigger fleet actually crashes its extra servers.
    EXPECT_GT(big.crashes.size(), small.crashes.size());
}

// An adopted server (cell migration / fleet growth) gets the same
// id-keyed stream it would have had from construction: adding it at
// t=0 reproduces the from-birth schedule exactly.
TEST(FaultInjectorTest, AddServerMatchesFromBirthSchedule)
{
    Tick until = 600 * kTicksPerSec;
    Recorded born = runInjector(11, crashyProfile(), 5, until);

    Simulation sim(11);
    FaultInjector injector(sim, crashyProfile(), 11, 4);
    Recorded rec;
    injector.start(FaultInjector::Hooks{
        [&](ServerId id) { rec.crashes.emplace_back(sim.now(), id); },
        [&](ServerId id) { rec.recoveries.emplace_back(sim.now(), id); }});
    injector.addServer(4);
    sim.runUntil(until);
    EXPECT_EQ(born.crashes, rec.crashes);
    EXPECT_EQ(born.recoveries, rec.recoveries);
}

TEST(DomainOutageTest, ScriptedOutageIsExact)
{
    FaultProfile profile;
    profile.domainOutageAt = 40 * kTicksPerSec;
    profile.domainOutageTarget = 5; // wraps into [0, 3)
    profile.domainOutageMttrSec = 10.0;
    ASSERT_TRUE(profile.domainOutagesEnabled());

    infless::faults::DomainOutageStream stream(profile, 7, 3);
    auto ev = stream.next();
    ASSERT_TRUE(ev.valid());
    EXPECT_EQ(ev.at, 40 * kTicksPerSec);
    EXPECT_EQ(ev.zone, 2);
    EXPECT_EQ(ev.repairAt, 50 * kTicksPerSec);
    // One-shot: nothing follows without a stochastic rate.
    EXPECT_FALSE(stream.next().valid());
}

TEST(DomainOutageTest, StochasticStreamDeterministicAndSequential)
{
    FaultProfile profile;
    profile.domainOutageMtbfSec = 120.0;
    profile.domainOutageMttrSec = 30.0;
    profile.crashHorizon = 3600 * kTicksPerSec;

    auto collect = [&](std::uint64_t seed) {
        infless::faults::DomainOutageStream stream(profile, seed, 4);
        std::vector<infless::faults::DomainOutageEvent> out;
        for (auto ev = stream.next(); ev.valid(); ev = stream.next())
            out.push_back(ev);
        return out;
    };
    auto a = collect(42);
    auto b = collect(42);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].zone, b[i].zone);
        EXPECT_EQ(a[i].repairAt, b[i].repairAt);
        EXPECT_GE(a[i].zone, 0);
        EXPECT_LT(a[i].zone, 4);
        EXPECT_GT(a[i].repairAt, a[i].at);
        // Outages never overlap: the next one starts after the repair.
        if (i > 0)
            EXPECT_GT(a[i].at, a[i - 1].repairAt);
        EXPECT_LE(a[i].at, profile.crashHorizon);
    }
    EXPECT_NE(collect(43).front().at, a.front().at);
}

TEST(DomainOutageTest, InjectorDrivesDomainHooks)
{
    FaultProfile profile;
    profile.domainOutageAt = 20 * kTicksPerSec;
    profile.domainOutageTarget = 1;
    profile.domainOutageMttrSec = 5.0;

    Simulation sim(7);
    FaultInjector injector(sim, profile, 7, 6, 3);
    std::vector<std::pair<Tick, infless::cluster::DomainId>> outages;
    std::vector<std::pair<Tick, infless::cluster::DomainId>> repairs;
    FaultInjector::Hooks hooks;
    hooks.domainOutage = [&](infless::cluster::DomainId zone) {
        outages.emplace_back(sim.now(), zone);
    };
    hooks.domainRepair = [&](infless::cluster::DomainId zone) {
        repairs.emplace_back(sim.now(), zone);
    };
    injector.start(std::move(hooks));
    sim.runUntil(60 * kTicksPerSec);

    ASSERT_EQ(outages.size(), 1u);
    EXPECT_EQ(outages[0].first, 20 * kTicksPerSec);
    EXPECT_EQ(outages[0].second, 1);
    ASSERT_EQ(repairs.size(), 1u);
    EXPECT_EQ(repairs[0].first, 25 * kTicksPerSec);
    EXPECT_EQ(repairs[0].second, 1);
    EXPECT_EQ(injector.domainOutagesScheduled(), 1);
    EXPECT_EQ(injector.domainRepairsScheduled(), 1);
}

TEST(GrayFailureTest, MultiplierIsSeededPerServerAndPure)
{
    FaultProfile profile;
    profile.grayFraction = 0.3;
    profile.grayFactor = 4.0;
    ASSERT_TRUE(profile.grayEnabled());
    // Gray membership is a pure function of (seed, id): no shared state,
    // identical on every call, and values are only 1 or the factor.
    int gray = 0;
    for (infless::cluster::ServerId s = 0; s < 200; ++s) {
        double m = infless::faults::grayExecMultiplier(profile, 7, s);
        EXPECT_EQ(m, infless::faults::grayExecMultiplier(profile, 7, s));
        EXPECT_TRUE(m == 1.0 || m == 4.0);
        gray += m == 4.0 ? 1 : 0;
    }
    // ~Binomial(200, 0.3): far from 0 and from all-gray.
    EXPECT_GT(gray, 30);
    EXPECT_LT(gray, 90);

    // Disabled profile: always 1, regardless of seed and id.
    FaultProfile off;
    EXPECT_EQ(infless::faults::grayExecMultiplier(off, 7, 3), 1.0);
    off.grayFraction = 0.5; // factor still 1.0 -> disabled
    EXPECT_EQ(infless::faults::grayExecMultiplier(off, 7, 3), 1.0);
}

TEST(FaultInjectorTest, StartupAndStragglerDraws)
{
    Simulation sim(5);
    FaultProfile profile;
    profile.startupFailureProb = 0.5;
    profile.stragglerProb = 0.5;
    profile.stragglerFactor = 3.0;
    FaultInjector injector(sim, profile, 5, 2);

    int failures = 0;
    for (int i = 0; i < 200; ++i)
        failures += injector.startupFails() ? 1 : 0;
    EXPECT_GT(failures, 50);
    EXPECT_LT(failures, 150);
    EXPECT_EQ(injector.startupFailureDraws(), failures);

    int stretched = 0;
    for (int i = 0; i < 200; ++i) {
        Tick t = injector.stretchExec(1000);
        EXPECT_TRUE(t == 1000 || t == 3000);
        stretched += t == 3000 ? 1 : 0;
    }
    EXPECT_GT(stretched, 50);
    EXPECT_LT(stretched, 150);
}

} // namespace
