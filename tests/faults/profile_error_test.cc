/**
 * @file
 * Tests for the mispredicted-profile fault: the deterministic per-model
 * multiplier, its jitter bounds, and the predictor-side distortion —
 * controller-visible predictions scale while the memoized faithful
 * composition (and thus ground truth) stays intact.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/resources.hh"
#include "faults/profile_error.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"

namespace {

using infless::cluster::Resources;
using infless::faults::ProfileErrorConfig;
using infless::faults::profileErrorMultiplier;
using infless::models::ExecModel;
using infless::models::ModelZoo;
using infless::profiler::CopPredictor;
using infless::profiler::OpProfileDb;

TEST(ProfileErrorTest, DefaultIsDisabledAndExactlyUnity)
{
    ProfileErrorConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    EXPECT_DOUBLE_EQ(profileErrorMultiplier(cfg, 42, 7), 1.0);
}

TEST(ProfileErrorTest, PureFactorIsExactForEveryModel)
{
    ProfileErrorConfig cfg;
    cfg.factor = 1.5;
    EXPECT_TRUE(cfg.enabled());
    for (std::uint64_t key = 0; key < 8; ++key) {
        EXPECT_DOUBLE_EQ(profileErrorMultiplier(cfg, 1, key), 1.5);
        EXPECT_DOUBLE_EQ(profileErrorMultiplier(cfg, 99, key), 1.5);
    }
}

TEST(ProfileErrorTest, JitterIsBoundedAndDeterministic)
{
    ProfileErrorConfig cfg;
    cfg.factor = 1.5;
    cfg.jitter = 0.2;
    double lo = 1.5 * std::exp(-0.2);
    double hi = 1.5 * std::exp(0.2);
    for (std::uint64_t key = 0; key < 32; ++key) {
        double m = profileErrorMultiplier(cfg, 42, key);
        EXPECT_GE(m, lo);
        EXPECT_LE(m, hi);
        // Pure hash: the same inputs always produce the same lie.
        EXPECT_DOUBLE_EQ(m, profileErrorMultiplier(cfg, 42, key));
    }
}

TEST(ProfileErrorTest, JitterSpreadsAcrossModelsAndSeeds)
{
    ProfileErrorConfig cfg;
    cfg.factor = 1.0;
    cfg.jitter = 0.3;
    // Different models drift by different ratios under the same seed,
    // and reseeding redraws the surface.
    EXPECT_NE(profileErrorMultiplier(cfg, 42, 1),
              profileErrorMultiplier(cfg, 42, 2));
    EXPECT_NE(profileErrorMultiplier(cfg, 42, 1),
              profileErrorMultiplier(cfg, 43, 1));
}

struct ProfileErrorPredictorFixture : ::testing::Test
{
    ExecModel exec;
    OpProfileDb db{exec};
    CopPredictor cop{db};
    const infless::models::ModelInfo &resnet =
        ModelZoo::shared().get("ResNet-50");
    Resources res{2000, 10, 0};
};

TEST_F(ProfileErrorPredictorFixture, DistortionScalesPredictions)
{
    double faithful_raw = cop.rawMicros(resnet, 4, res);
    double faithful_pred =
        static_cast<double>(cop.predict(resnet, 4, res));

    cop.setDistortion([](std::uint64_t) { return 1.5; });
    EXPECT_NEAR(cop.rawMicros(resnet, 4, res), 1.5 * faithful_raw,
                1e-6 * faithful_raw);
    // The safety offset multiplies on top of the lie (predict() is
    // Tick-quantized, hence the 1-tick slack).
    EXPECT_NEAR(static_cast<double>(cop.predict(resnet, 4, res)),
                1.5 * faithful_pred, 2.0);
}

TEST_F(ProfileErrorPredictorFixture, MemoKeepsTheFaithfulComposition)
{
    // Warm the memo undistorted, then lie: the distortion applies
    // post-memo, so it takes effect immediately and swapping it back
    // restores the faithful bits without re-pricing.
    double faithful = cop.rawMicros(resnet, 8, res);
    cop.setDistortion([](std::uint64_t) { return 2.0; });
    EXPECT_DOUBLE_EQ(cop.rawMicros(resnet, 8, res), 2.0 * faithful);
    cop.setDistortion({});
    EXPECT_DOUBLE_EQ(cop.rawMicros(resnet, 8, res), faithful);
}

TEST_F(ProfileErrorPredictorFixture, GroundTruthErrorReflectsTheLie)
{
    // predictionError measures the raw estimate against the untouched
    // execution surface — a 1.5x distortion must surface as ~50% more
    // relative error, proving execution truth is not distorted along
    // with the prediction.
    double honest = cop.predictionError(exec, resnet, 4, res);
    cop.setDistortion([](std::uint64_t) { return 1.5; });
    double lying = cop.predictionError(exec, resnet, 4, res);
    EXPECT_GT(lying, honest);
    EXPECT_GT(lying, 0.3);
}

} // namespace
