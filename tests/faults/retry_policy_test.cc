/**
 * @file
 * Tests for the failover retry policy (capped exponential backoff).
 */

#include <gtest/gtest.h>

#include "faults/retry_policy.hh"

namespace {

using infless::faults::RetryPolicy;
using infless::sim::kTicksPerMs;
using infless::sim::kTicksPerSec;

TEST(RetryPolicyTest, DefaultsEnableRetries)
{
    RetryPolicy p;
    EXPECT_TRUE(p.retriesEnabled());
    EXPECT_EQ(p.maxAttempts, 3);
}

TEST(RetryPolicyTest, NoneDisablesRetries)
{
    RetryPolicy p = RetryPolicy::none();
    EXPECT_FALSE(p.retriesEnabled());
    EXPECT_EQ(p.maxAttempts, 1);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyUntilCap)
{
    RetryPolicy p;
    p.initialBackoff = 10 * kTicksPerMs;
    p.maxBackoff = 2 * kTicksPerSec;
    p.multiplier = 2.0;

    EXPECT_EQ(p.backoff(1), 10 * kTicksPerMs);
    EXPECT_EQ(p.backoff(2), 20 * kTicksPerMs);
    EXPECT_EQ(p.backoff(3), 40 * kTicksPerMs);
    // 10ms * 2^9 = 5.12s: past the cap.
    EXPECT_EQ(p.backoff(10), 2 * kTicksPerSec);
    // Monotone non-decreasing throughout.
    for (int k = 1; k < 20; ++k)
        EXPECT_LE(p.backoff(k), p.backoff(k + 1));
}

TEST(RetryPolicyTest, BackoffNeverBelowOneTick)
{
    RetryPolicy p;
    p.initialBackoff = 0;
    p.maxBackoff = kTicksPerSec;
    EXPECT_GE(p.backoff(1), 1);
    EXPECT_GE(p.backoff(5), 1);
}

} // namespace
