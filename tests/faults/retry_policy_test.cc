/**
 * @file
 * Tests for the failover retry policy (capped exponential backoff).
 */

#include <gtest/gtest.h>

#include <limits>

#include "faults/retry_policy.hh"

namespace {

using infless::faults::RetryPolicy;
using infless::sim::kTicksPerMs;
using infless::sim::kTicksPerSec;

TEST(RetryPolicyTest, DefaultsEnableRetries)
{
    RetryPolicy p;
    EXPECT_TRUE(p.retriesEnabled());
    EXPECT_EQ(p.maxAttempts, 3);
}

TEST(RetryPolicyTest, NoneDisablesRetries)
{
    RetryPolicy p = RetryPolicy::none();
    EXPECT_FALSE(p.retriesEnabled());
    EXPECT_EQ(p.maxAttempts, 1);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyUntilCap)
{
    RetryPolicy p;
    p.initialBackoff = 10 * kTicksPerMs;
    p.maxBackoff = 2 * kTicksPerSec;
    p.multiplier = 2.0;

    EXPECT_EQ(p.backoff(1), 10 * kTicksPerMs);
    EXPECT_EQ(p.backoff(2), 20 * kTicksPerMs);
    EXPECT_EQ(p.backoff(3), 40 * kTicksPerMs);
    // 10ms * 2^9 = 5.12s: past the cap.
    EXPECT_EQ(p.backoff(10), 2 * kTicksPerSec);
    // Monotone non-decreasing throughout.
    for (int k = 1; k < 20; ++k)
        EXPECT_LE(p.backoff(k), p.backoff(k + 1));
}

TEST(RetryPolicyTest, BackoffNeverBelowOneTick)
{
    RetryPolicy p;
    p.initialBackoff = 0;
    p.maxBackoff = kTicksPerSec;
    EXPECT_GE(p.backoff(1), 1);
    EXPECT_GE(p.backoff(5), 1);
}

TEST(RetryPolicyTest, BackoffSaturatesInsteadOfOverflowing)
{
    // With a huge cap the exponential growth exceeds Tick range long
    // before the cap kicks in; the cast must saturate at maxBackoff
    // instead of converting an out-of-range double (UB).
    RetryPolicy p;
    p.initialBackoff = infless::sim::kTicksPerHour;
    p.maxBackoff = std::numeric_limits<infless::sim::Tick>::max() / 2;
    p.multiplier = 10.0;
    EXPECT_EQ(p.backoff(200), p.maxBackoff);
    // Monotone non-decreasing all the way into saturation.
    for (int k = 1; k < 64; ++k)
        EXPECT_LE(p.backoff(k), p.backoff(k + 1));
}

TEST(RetryPolicyTest, BackoffNonIntegerMultiplierUnchangedByGuard)
{
    RetryPolicy p;
    p.initialBackoff = 10 * kTicksPerMs;
    p.maxBackoff = 2 * kTicksPerSec;
    p.multiplier = 1.5;
    // 10ms * 1.5^(k-1), truncated at the final cast — the historical
    // values, pinned so the overflow guard cannot change them.
    EXPECT_EQ(p.backoff(1), 10000);
    EXPECT_EQ(p.backoff(2), 15000);
    EXPECT_EQ(p.backoff(3), 22500);
    EXPECT_EQ(p.backoff(4), 33750);
    EXPECT_EQ(p.backoff(30), 2 * kTicksPerSec);
}

TEST(RetryPolicyTest, DegenerateZeroCapStillPositive)
{
    RetryPolicy p;
    p.initialBackoff = 0;
    p.maxBackoff = 0;
    EXPECT_EQ(p.backoff(1), 1);
    EXPECT_EQ(p.backoff(10), 1);
}

} // namespace
