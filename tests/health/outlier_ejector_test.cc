/**
 * @file
 * Tests for the health scorer / outlier ejector: EMA folding, the
 * median-relative ejection rule, the success-rate rule, the
 * max-ejection-fraction guard and probation-based re-admission.
 */

#include <gtest/gtest.h>

#include "health/outlier_ejector.hh"
#include "sim/time.hh"

namespace {

using infless::cluster::ServerId;
using infless::health::HealthConfig;
using infless::health::OutlierEjector;
using infless::health::ServerHealth;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

constexpr auto kAnyone = [](ServerId) { return true; };

HealthConfig
testConfig()
{
    HealthConfig cfg;
    cfg.enabled = true;
    cfg.minSamples = 10;
    cfg.ratioThreshold = 2.0;
    cfg.maxEjectFraction = 0.25;
    cfg.probation = 60 * kTicksPerSec;
    return cfg;
}

/** Feed @p n exec samples with a fixed actual/base ratio. */
void
feed(OutlierEjector &ej, ServerId id, int n, double ratio)
{
    for (int i = 0; i < n; ++i) {
        ej.recordExec(id, 1000,
                      static_cast<Tick>(1000.0 * ratio));
        ej.recordSuccess(id);
    }
}

TEST(OutlierEjectorTest, HealthyFleetEjectsNobody)
{
    OutlierEjector ej(testConfig());
    ej.ensureServers(8);
    for (ServerId s = 0; s < 8; ++s)
        feed(ej, s, 20, 1.0);
    auto acts = ej.evaluate(5 * kTicksPerSec, kAnyone, 8);
    EXPECT_TRUE(acts.eject.empty());
    EXPECT_TRUE(acts.readmit.empty());
    EXPECT_EQ(ej.ejectedCount(), 0u);
    EXPECT_EQ(ej.emaRatio(0), 1.0);
}

TEST(OutlierEjectorTest, SlowOutlierEjectedAgainstFleetMedian)
{
    OutlierEjector ej(testConfig());
    ej.ensureServers(8);
    for (ServerId s = 0; s < 7; ++s)
        feed(ej, s, 20, 1.0);
    feed(ej, 7, 20, 4.0); // 4x the fleet median, past threshold 2.0

    auto acts = ej.evaluate(5 * kTicksPerSec, kAnyone, 8);
    ASSERT_EQ(acts.eject.size(), 1u);
    EXPECT_EQ(acts.eject[0], 7);
    EXPECT_EQ(ej.state(7), ServerHealth::Ejected);
    EXPECT_EQ(ej.state(6), ServerHealth::Healthy);
    EXPECT_EQ(ej.ejections(), 1);
    EXPECT_NEAR(ej.emaRatio(7), 4.0, 1e-9);
}

TEST(OutlierEjectorTest, MinSamplesGateBlocksEarlyJudgment)
{
    OutlierEjector ej(testConfig());
    ej.ensureServers(4);
    for (ServerId s = 0; s < 3; ++s)
        feed(ej, s, 20, 1.0);
    // Only 5 samples (< minSamples 10): too little evidence, however
    // bad the ratio looks.
    for (int i = 0; i < 5; ++i)
        ej.recordExec(3, 1000, 8000);
    auto acts = ej.evaluate(5 * kTicksPerSec, kAnyone, 4);
    EXPECT_TRUE(acts.eject.empty());

    // More evidence arrives: now it is judged and ejected.
    for (int i = 0; i < 10; ++i)
        ej.recordExec(3, 1000, 8000);
    acts = ej.evaluate(10 * kTicksPerSec, kAnyone, 4);
    ASSERT_EQ(acts.eject.size(), 1u);
    EXPECT_EQ(acts.eject[0], 3);
}

TEST(OutlierEjectorTest, FailingServerEjectedBySuccessRate)
{
    OutlierEjector ej(testConfig());
    ej.ensureServers(4);
    for (ServerId s = 0; s < 3; ++s)
        feed(ej, s, 20, 1.0);
    // Server 3 serves at normal speed but fails most of its work.
    for (int i = 0; i < 20; ++i) {
        ej.recordExec(3, 1000, 1000);
        if (i % 4 == 0)
            ej.recordSuccess(3);
        else
            ej.recordFailure(3);
    }
    auto acts = ej.evaluate(5 * kTicksPerSec, kAnyone, 4);
    ASSERT_EQ(acts.eject.size(), 1u);
    EXPECT_EQ(acts.eject[0], 3);
}

TEST(OutlierEjectorTest, GuardCapsEjectedFraction)
{
    // 8 live servers, maxEjectFraction 0.25 -> at most 2 quarantined,
    // even with 3 servers all far past the threshold. (A bad *majority*
    // is a different defense: it drags the median up and nobody is an
    // outlier anymore.)
    OutlierEjector ej(testConfig());
    ej.ensureServers(8);
    for (ServerId s = 0; s < 5; ++s)
        feed(ej, s, 20, 1.0);
    for (ServerId s = 5; s < 8; ++s)
        feed(ej, s, 20, 5.0 + s); // distinct badness, worst last

    auto acts = ej.evaluate(5 * kTicksPerSec, kAnyone, 8);
    ASSERT_EQ(acts.eject.size(), 2u);
    EXPECT_EQ(ej.ejectedCount(), 2u);
    // Worst-first: the highest EMA/median ratios go first.
    EXPECT_EQ(acts.eject[0], 7);
    EXPECT_EQ(acts.eject[1], 6);

    // Still capped on later evaluations while the first two sit in
    // quarantine.
    for (ServerId s = 0; s < 4; ++s)
        feed(ej, s, 20, 1.0);
    feed(ej, 4, 20, 9.0);
    acts = ej.evaluate(10 * kTicksPerSec, kAnyone, 8);
    EXPECT_TRUE(acts.eject.empty());
    EXPECT_EQ(ej.ejectedCount(), 2u);
}

TEST(OutlierEjectorTest, ProbationReadmitsWithFreshStats)
{
    HealthConfig cfg = testConfig();
    OutlierEjector ej(cfg);
    ej.ensureServers(4);
    for (ServerId s = 0; s < 3; ++s)
        feed(ej, s, 20, 1.0);
    feed(ej, 3, 20, 6.0);
    auto acts = ej.evaluate(5 * kTicksPerSec, kAnyone, 4);
    ASSERT_EQ(acts.eject.size(), 1u);

    // Before probation expires: still ejected.
    acts = ej.evaluate(5 * kTicksPerSec + cfg.probation - 1, kAnyone, 4);
    EXPECT_TRUE(acts.readmit.empty());
    EXPECT_EQ(ej.state(3), ServerHealth::Ejected);

    // Probation over: re-admitted with a clean slate (EMA back to the
    // unobserved default), so the old bad history cannot re-eject it.
    acts = ej.evaluate(5 * kTicksPerSec + cfg.probation, kAnyone, 4);
    ASSERT_EQ(acts.readmit.size(), 1u);
    EXPECT_EQ(acts.readmit[0], 3);
    EXPECT_EQ(ej.state(3), ServerHealth::Healthy);
    EXPECT_EQ(ej.emaRatio(3), 1.0);
    EXPECT_EQ(ej.readmissions(), 1);
    EXPECT_EQ(ej.ejectedCount(), 0u);

    // Still degraded? It re-ejects on evidence accumulated anew.
    for (ServerId s = 0; s < 3; ++s)
        feed(ej, s, 20, 1.0);
    feed(ej, 3, 20, 6.0);
    acts = ej.evaluate(5 * kTicksPerSec + cfg.probation +
                           cfg.evalPeriod,
                       kAnyone, 4);
    ASSERT_EQ(acts.eject.size(), 1u);
    EXPECT_EQ(ej.ejections(), 2);
}

TEST(OutlierEjectorTest, IneligibleServersAreNeverEjected)
{
    OutlierEjector ej(testConfig());
    ej.ensureServers(4);
    for (ServerId s = 0; s < 3; ++s)
        feed(ej, s, 20, 1.0);
    feed(ej, 3, 20, 6.0);
    // Server 3 is down (crashed): already out of the pool, ejecting it
    // would double-punish and burn the guard budget.
    auto acts = ej.evaluate(
        5 * kTicksPerSec, [](ServerId id) { return id != 3; }, 4);
    EXPECT_TRUE(acts.eject.empty());
}

TEST(OutlierEjectorTest, DeterministicAcrossRuns)
{
    auto run = [] {
        HealthConfig cfg = testConfig();
        cfg.maxEjectFraction = 0.4; // floor(0.4 * 6) = 2 slots
        OutlierEjector ej(cfg);
        ej.ensureServers(6);
        for (ServerId s = 0; s < 6; ++s)
            feed(ej, s, 20, s == 2 ? 5.0 : 1.0);
        auto a = ej.evaluate(5 * kTicksPerSec, kAnyone, 6);
        for (ServerId s = 0; s < 6; ++s)
            if (s != 2)
                feed(ej, s, 20, s == 4 ? 7.0 : 1.0);
        auto b = ej.evaluate(10 * kTicksPerSec, kAnyone, 6);
        std::vector<ServerId> out = a.eject;
        out.insert(out.end(), b.eject.begin(), b.eject.end());
        return out;
    };
    EXPECT_EQ(run(), run());
    EXPECT_EQ(run(), (std::vector<ServerId>{2, 4}));
}

} // namespace
