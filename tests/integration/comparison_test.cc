/**
 * @file
 * Cross-system comparison tests: the qualitative orderings the paper's
 * evaluation reports must hold in this reproduction.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/batch_otp.hh"
#include "baselines/openfaas_plus.hh"
#include "core/platform.hh"
#include "models/model_zoo.hh"
#include "workload/generators.hh"

namespace {

using infless::baselines::BatchOtp;
using infless::baselines::OpenFaasPlus;
using infless::cluster::kDefaultBeta;
using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::workload::uniformArrivals;

struct RunResult
{
    double throughputPerResource;
    double sloViolationRate;
    std::int64_t completions;
};

RunResult
runScenario(Platform &p, double rps)
{
    FunctionSpec spec{"resnet", "ResNet-50", msToTicks(200), 32};
    auto fn = p.deploy(spec);
    p.injectTrace(fn, uniformArrivals(rps, 2 * kTicksPerMin));
    p.run(2 * kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    return RunResult{
        m.throughputPerResource(p.endTime(), kDefaultBeta),
        m.sloViolationRate(), m.completions()};
}

TEST(ComparisonTest, ThroughputOrderingInflessBatchOpenfaas)
{
    // Fig. 11/12: INFless > BATCH > OpenFaaS+ in throughput per
    // occupied resource.
    // High enough that BATCH's uniform instance quantization is filled;
    // at light loads one-to-one instances can beat coarse batch fleets.
    Platform infl(8);
    BatchOtp batch(8);
    OpenFaasPlus ofp(8);
    auto r_infl = runScenario(infl, 480.0);
    auto r_batch = runScenario(batch, 480.0);
    auto r_ofp = runScenario(ofp, 480.0);

    EXPECT_GT(r_infl.throughputPerResource, r_batch.throughputPerResource);
    EXPECT_GT(r_batch.throughputPerResource, r_ofp.throughputPerResource);
    // Rough factors: 2-5x over OpenFaaS+, <= that over BATCH.
    EXPECT_GT(r_infl.throughputPerResource /
                  r_ofp.throughputPerResource,
              2.0);
}

TEST(ComparisonTest, InflessSloViolationIsLow)
{
    Platform infl(8);
    auto r = runScenario(infl, 100.0);
    // Fig. 15a: <= ~3% violations on steady load (ramp-up included here).
    EXPECT_LT(r.sloViolationRate, 0.08);
    EXPECT_GT(r.completions, 10'000);
}

TEST(ComparisonTest, InflessUsesNonUniformConfigs)
{
    // Fig. 13: INFless spreads over multiple (b, c, g) configurations
    // while BATCH uses a handful.
    Platform infl(8);
    BatchOtp batch(8);
    auto deploy_and_run = [](Platform &p) {
        FunctionSpec spec{"resnet", "ResNet-50", msToTicks(200), 32};
        auto fn = p.deploy(spec);
        // Ramp through several load levels to exercise adaptation.
        p.injectTrace(fn, uniformArrivals(10.0, 30 * kTicksPerSec));
        p.run(30 * kTicksPerSec);
        p.injectTrace(fn, uniformArrivals(150.0, 30 * kTicksPerSec));
        p.run(60 * kTicksPerSec);
        return p.configUsage(fn).size();
    };
    EXPECT_GE(deploy_and_run(infl), deploy_and_run(batch));
}

TEST(ComparisonTest, RelaxedSloImprovesInflessThroughput)
{
    // Fig. 12b / 18b: larger SLOs allow larger batches and leaner
    // resources per instance.
    auto tpr = [](infless::sim::Tick slo) {
        Platform p(8);
        FunctionSpec spec{"resnet", "ResNet-50", slo, 32};
        auto fn = p.deploy(spec);
        p.injectTrace(fn, uniformArrivals(120.0, 2 * kTicksPerMin));
        p.run(2 * kTicksPerMin + 5 * kTicksPerSec);
        return p.totalMetrics().throughputPerResource(p.endTime(),
                                                      kDefaultBeta);
    };
    EXPECT_GT(tpr(msToTicks(350)), tpr(msToTicks(150)) * 0.95);
}

TEST(ComparisonTest, BatchingAblationLosesThroughput)
{
    // Fig. 11: disabling built-in batching (all batchsizes = 1) hurts.
    auto tpr = [](int max_batch) {
        Platform p(8);
        FunctionSpec spec{"resnet", "ResNet-50", msToTicks(200),
                          max_batch};
        auto fn = p.deploy(spec);
        p.injectTrace(fn, uniformArrivals(120.0, 2 * kTicksPerMin));
        p.run(2 * kTicksPerMin + 5 * kTicksPerSec);
        return p.totalMetrics().throughputPerResource(p.endTime(),
                                                      kDefaultBeta);
    };
    EXPECT_GT(tpr(32), tpr(1) * 1.2);
}

TEST(ComparisonTest, PredictionOffsetAblationLosesThroughput)
{
    // Fig. 11: OP2 (100% offset) wastes capacity versus the 10% default.
    auto tpr = [](double offset) {
        infless::core::PlatformOptions opts;
        opts.cop.safetyOffset = offset;
        Platform p(8, opts);
        FunctionSpec spec{"resnet", "ResNet-50", msToTicks(200), 32};
        auto fn = p.deploy(spec);
        p.injectTrace(fn, uniformArrivals(120.0, 2 * kTicksPerMin));
        p.run(2 * kTicksPerMin + 5 * kTicksPerSec);
        return p.totalMetrics().throughputPerResource(p.endTime(),
                                                      kDefaultBeta);
    };
    EXPECT_GT(tpr(0.10), tpr(1.0));
}

} // namespace
