/**
 * @file
 * Integration tests: full OSVT / Q&A application scenarios on the
 * INFless platform, driven by synthetic Azure-style traces.
 */

#include <gtest/gtest.h>

#include "baselines/batch_otp.hh"
#include "core/platform.hh"
#include "models/model_zoo.hh"
#include "workload/azure_synth.hh"
#include "workload/generators.hh"

namespace {

using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::models::ModelZoo;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::ArrivalTrace;
using infless::workload::synthesizeTrace;
using infless::workload::TracePattern;
using infless::workload::uniformArrivals;

/** Deploy an application bundle with a shared SLO and constant load. */
void
deployBundle(Platform &p, const std::vector<std::string> &models, Tick slo,
             double rps_each, Tick duration)
{
    for (const auto &name : models) {
        FunctionSpec spec{name + "-fn", name, slo, 32};
        auto fn = p.deploy(spec);
        p.injectTrace(fn, uniformArrivals(rps_each, duration));
    }
}

TEST(EndToEndTest, OsvtScenarioMeetsSlo)
{
    Platform p(8);
    deployBundle(p, ModelZoo::osvtModels(), msToTicks(200), 40.0,
                 2 * kTicksPerMin);
    p.run(2 * kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 10'000);
    EXPECT_LT(m.sloViolationRate(), 0.08);
}

TEST(EndToEndTest, QaRobotScenarioMeetsTightSlo)
{
    Platform p(8);
    deployBundle(p, ModelZoo::qaRobotModels(), msToTicks(50), 60.0,
                 2 * kTicksPerMin);
    p.run(2 * kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 15'000);
    EXPECT_LT(m.sloViolationRate(), 0.08);
}

TEST(EndToEndTest, MixedApplicationsShareTheCluster)
{
    Platform p(8);
    deployBundle(p, ModelZoo::osvtModels(), msToTicks(200), 25.0,
                 kTicksPerMin);
    deployBundle(p, ModelZoo::qaRobotModels(), msToTicks(50), 40.0,
                 kTicksPerMin);
    p.run(kTicksPerMin + 10 * kTicksPerSec);
    const auto &m = p.totalMetrics();
    EXPECT_EQ(p.functionCount(), 6u);
    EXPECT_GT(m.completions(), 0);
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());
    EXPECT_LT(m.sloViolationRate(), 0.10);
}

TEST(EndToEndTest, BurstyTraceIsAbsorbed)
{
    Platform p(8);
    FunctionSpec spec{"resnet", "ResNet-50", msToTicks(200), 32};
    auto fn = p.deploy(spec);
    auto series = synthesizeTrace(TracePattern::Bursty, 40.0, 0.02, 3)
                      .truncated(25 * kTicksPerMin);
    p.injectRateSeries(fn, series);
    p.run(30 * kTicksPerMin);
    const auto &m = p.totalMetrics();
    EXPECT_GT(m.completions(), 0);
    // Bursts cost some violations but the bulk completes in time.
    EXPECT_LT(m.sloViolationRate(), 0.15);
}

TEST(EndToEndTest, SporadicTraceCausesColdStartsButRecovers)
{
    Platform p(8);
    FunctionSpec spec{"textcnn", "TextCNN-69", msToTicks(50), 32};
    auto fn = p.deploy(spec);
    auto series = synthesizeTrace(TracePattern::Sporadic, 2.0, 0.05, 7)
                      .truncated(60 * kTicksPerMin);
    p.injectRateSeries(fn, series);
    p.run(70 * kTicksPerMin);
    const auto &m = p.totalMetrics();
    if (m.arrivals() > 0) {
        EXPECT_GT(m.completions() + m.drops(), 0);
        EXPECT_GT(m.coldLaunches(), 0);
    }
}

TEST(EndToEndTest, InflessPacksServersWhenDemandFillsCluster)
{
    // Fig. 17b's premise: when aggregate demand approaches cluster
    // capacity, best-fit e_ij placement concentrates instances so active
    // servers stay well utilized. (Cross-system fragment comparisons
    // need the large-scale simulation; see bench_fig17_scale. At light
    // load the active-server fragment metric penalizes right-sizing, so
    // this test sizes demand to the cluster.)
    Platform p(2);
    deployBundle(p, ModelZoo::osvtModels(), msToTicks(200), 700.0,
                 3 * kTicksPerMin);
    p.run(3 * kTicksPerMin);
    // Steady-state (end-of-run) fragment ratio over active servers. At
    // this scale a couple of right-sized fleets cannot fill testbed
    // machines, so the bound is loose; the ~15% figure needs the
    // 2,000-server simulation's fine-grained mosaic.
    EXPECT_LT(p.cluster().fragmentRatio(), 0.85);
    // And the cluster really is loaded with accelerator work.
    EXPECT_GT(p.cluster().totalAllocated().gpuSmPercent, 60);
}

} // namespace
