/**
 * @file
 * Integration test of the pre-warming path: once LSTH has learned a
 * function's regular idle gap, the platform unloads the instance after
 * the keep-alive window and pre-warms a fresh one shortly before the
 * next expected invocation — so steady-state invocations find a warm
 * instance without keeping one alive the whole time.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/logging.hh"

#include "core/platform.hh"
#include "workload/trace.hh"

namespace {

using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::sim::kTicksPerMin;
using infless::sim::msToTicks;
using infless::sim::Tick;

/** One invocation exactly every five minutes. */
infless::workload::ArrivalTrace
fiveMinutePulses(int count)
{
    std::vector<Tick> arrivals;
    for (int i = 1; i <= count; ++i)
        arrivals.push_back(static_cast<Tick>(i) * 5 * kTicksPerMin);
    return infless::workload::ArrivalTrace(std::move(arrivals));
}

TEST(PrewarmTest, LsthPrewarmsAheadOfPeriodicInvocations)
{
    Platform p(2);
    auto fn = p.deploy(FunctionSpec{"fn", "MobileNet", msToTicks(200), 32});
    p.injectTrace(fn, fiveMinutePulses(24));
    p.run(24 * 5 * kTicksPerMin + kTicksPerMin);

    const auto &m = p.functionMetrics(fn);
    EXPECT_EQ(m.completions(), 24);
    // After the histogram matures (minSamples gaps), launches come from
    // the pre-warming path, which is warm by construction.
    EXPECT_GT(m.warmLaunches(), 3);
    // Early launches were cold (nothing learned yet).
    EXPECT_GE(m.coldLaunches(), 1);
}

TEST(PrewarmTest, InstanceUnloadsBetweenPulsesAndReturnsBeforeTheNext)
{
    Platform p(2);
    auto fn = p.deploy(FunctionSpec{"fn", "MobileNet", msToTicks(200), 32});
    p.injectTrace(fn, fiveMinutePulses(24));

    // Let the histogram mature: 15 pulses in.
    Tick base = 15 * 5 * kTicksPerMin;
    p.run(base + kTicksPerMin);

    // Mid-gap the function should be fully unloaded (keep-alive for a
    // 5-minute learned gap ends well before minute 4)...
    p.run(base + 4 * kTicksPerMin);
    EXPECT_EQ(p.liveInstanceCount(fn), 0);

    // ...and pre-warmed again just before the next pulse at minute 5.
    p.run(base + 5 * kTicksPerMin - msToTicks(500));
    EXPECT_EQ(p.liveInstanceCount(fn), 1);
    auto snapshots = p.instanceSnapshots(fn);
    ASSERT_EQ(snapshots.size(), 1u);
    EXPECT_FALSE(snapshots[0].draining);
}

TEST(PrewarmTest, SteadyStatePulsesAvoidColdLatency)
{
    Platform p(2);
    auto fn = p.deploy(FunctionSpec{"fn", "MobileNet", msToTicks(200), 32});
    p.injectTrace(fn, fiveMinutePulses(24));
    p.run(24 * 5 * kTicksPerMin + kTicksPerMin);

    const auto &m = p.functionMetrics(fn);
    // The p50 completion paid no cold start: the early cold pulses are a
    // minority once pre-warming engages.
    EXPECT_LT(m.coldTime().percentile(50), msToTicks(5));
    EXPECT_LT(m.sloViolationRate(), 0.5);
}

} // namespace
