/**
 * @file
 * Property-based sweeps over platform runs: invariants that must hold
 * for every system, workload and SLO combination.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "baselines/batch_otp.hh"
#include "baselines/batch_rs.hh"
#include "baselines/openfaas_plus.hh"
#include "core/platform.hh"
#include "workload/generators.hh"

namespace {

using infless::baselines::BatchOtp;
using infless::baselines::BatchRs;
using infless::baselines::OpenFaasPlus;
using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;
using infless::sim::Tick;
using infless::workload::uniformArrivals;

enum class System
{
    Infless,
    OpenFaas,
    Batch,
    BatchRs
};

const char *
systemName(System s)
{
    switch (s) {
      case System::Infless:
        return "infless";
      case System::OpenFaas:
        return "openfaas";
      case System::Batch:
        return "batch";
      case System::BatchRs:
        return "batchrs";
    }
    return "?";
}

std::unique_ptr<Platform>
makeSystem(System s, std::size_t servers)
{
    switch (s) {
      case System::Infless:
        return std::make_unique<Platform>(servers);
      case System::OpenFaas:
        return std::make_unique<OpenFaasPlus>(servers);
      case System::Batch:
        return std::make_unique<BatchOtp>(servers);
      case System::BatchRs:
        return std::make_unique<BatchRs>(servers);
    }
    return nullptr;
}

/** (system, model name, slo ms, rps) */
using PropertyParam = std::tuple<System, const char *, int, double>;

class PlatformProperties : public ::testing::TestWithParam<PropertyParam>
{
};

TEST_P(PlatformProperties, InvariantsHoldThroughoutARun)
{
    auto [system, model, slo_ms, rps] = GetParam();
    auto platform = makeSystem(system, 6);
    FunctionSpec spec{"fn", model, msToTicks(slo_ms), 32};
    auto fn = platform->deploy(spec);
    platform->injectTrace(fn, uniformArrivals(rps, kTicksPerMin));
    platform->run(kTicksPerMin + 15 * kTicksPerSec);

    const auto &m = platform->totalMetrics();

    // Conservation: every arrival either completed or dropped (the grace
    // window exceeds the largest batch wait + execution time).
    EXPECT_EQ(m.completions() + m.drops(), m.arrivals());

    // Resource conservation: nothing allocated without live instances.
    if (platform->liveInstanceCount() == 0)
        EXPECT_TRUE(platform->cluster().totalAllocated().isZero());

    // No server ever exceeded capacity (release() panics otherwise, so
    // this is a belt-and-braces check on availability bounds).
    for (const auto &server : platform->cluster().servers()) {
        EXPECT_TRUE(server.available().fitsIn(server.capacity()));
        EXPECT_TRUE(server.allocated().fitsIn(server.capacity()));
    }

    // Latency decomposition: per-part means sum to the total mean.
    if (m.completions() > 0) {
        double parts = m.queueTime().mean() + m.execTime().mean() +
                       m.coldTime().mean();
        EXPECT_NEAR(parts / std::max(1.0, m.latency().mean()), 1.0, 0.05);
    }

    // Violation rate is a valid fraction.
    EXPECT_GE(m.sloViolationRate(), 0.0);
    EXPECT_LE(m.sloViolationRate(), 1.0);

    // Batches never exceed served requests.
    EXPECT_LE(m.batches(), m.completions() + m.drops() + 64);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlatformProperties,
    ::testing::Combine(
        ::testing::Values(System::Infless, System::OpenFaas, System::Batch,
                          System::BatchRs),
        ::testing::Values("ResNet-50", "LSTM-2365"),
        ::testing::Values(100, 300),
        ::testing::Values(20.0, 120.0)),
    [](const auto &info) {
        std::string name = systemName(std::get<0>(info.param));
        name += "_";
        for (char c : std::string(std::get<1>(info.param))) {
            if (c == '-')
                continue;
            name += c;
        }
        name += "_slo" + std::to_string(std::get<2>(info.param));
        name += "_rps" +
                std::to_string(static_cast<int>(std::get<3>(info.param)));
        return name;
    });

/** SLO monotonicity: a looser SLO never makes violations worse. */
class SloMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(SloMonotonicity, LooserSloDoesNotIncreaseViolations)
{
    double rps = GetParam();
    auto violation_at = [&](Tick slo) {
        Platform p(6);
        FunctionSpec spec{"fn", "ResNet-50", slo, 32};
        auto fn = p.deploy(spec);
        p.injectTrace(fn, uniformArrivals(rps, kTicksPerMin));
        p.run(kTicksPerMin + 10 * kTicksPerSec);
        return p.totalMetrics().sloViolationRate();
    };
    EXPECT_LE(violation_at(msToTicks(400)),
              violation_at(msToTicks(150)) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, SloMonotonicity,
                         ::testing::Values(30.0, 90.0),
                         [](const auto &info) {
                             return "rps" +
                                    std::to_string(
                                        static_cast<int>(info.param));
                         });

} // namespace
