/**
 * @file
 * Regression tests for the auto-scaling engine's dynamic behaviour:
 * fleet consolidation (reconfiguration), cross-function fairness, and
 * accelerated cold starts.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "core/platform.hh"
#include "models/model_zoo.hh"
#include "workload/generators.hh"

namespace {

using infless::core::FunctionSpec;
using infless::core::Platform;
using infless::core::PlatformOptions;
using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::msToTicks;

TEST(ScalingBehaviorTest, SteadyLoadFleetConsolidatesIntoBatches)
{
    // Regression: incremental ramp-up used to leave a permanent fleet of
    // batch-1 instances; the reconfiguration pass must consolidate it.
    Platform p(4);
    auto fn = p.deploy(FunctionSpec{"r", "ResNet-50", msToTicks(200), 32});
    p.injectTrace(fn,
                  infless::workload::uniformArrivals(100.0,
                                                     90 * kTicksPerSec));
    p.run(90 * kTicksPerSec);

    EXPECT_GT(p.totalMetrics().meanBatchFill(), 3.0);
    // The surviving fleet is batched, not the ramp-up's batch-1 configs.
    bool any_batched_served = false;
    for (const auto &usage : p.configUsage(fn)) {
        if (usage.config.batchSize > 1 &&
            usage.requestsServed > p.totalMetrics().completions() / 2) {
            any_batched_served = true;
        }
    }
    EXPECT_TRUE(any_batched_served);
}

TEST(ScalingBehaviorTest, ReconfigurationPaysOffQuickly)
{
    // Batch fill over the second half of the run should far exceed the
    // overall mean (the ramp's batch-1 history dilutes the latter).
    Platform p(4);
    auto fn = p.deploy(FunctionSpec{"r", "ResNet-50", msToTicks(200), 32});
    p.injectTrace(fn,
                  infless::workload::uniformArrivals(100.0,
                                                     60 * kTicksPerSec));
    p.run(30 * kTicksPerSec);
    auto half_batches = p.totalMetrics().batches();
    auto half_completions = p.totalMetrics().completions();
    p.run(60 * kTicksPerSec + 5 * kTicksPerSec);
    auto late_batches = p.totalMetrics().batches() - half_batches;
    auto late_completions =
        p.totalMetrics().completions() - half_completions;
    ASSERT_GT(late_batches, 0);
    double late_fill = static_cast<double>(late_completions) /
                       static_cast<double>(late_batches);
    EXPECT_GT(late_fill, 4.0);
}

TEST(ScalingBehaviorTest, NoFunctionStarvesUnderClusterPressure)
{
    // Regression: one function's scale-out used to claim the entire CPU
    // pool in a single tick, starving its peers.
    Platform p(2);
    std::vector<infless::core::FunctionId> fns;
    for (const auto &model :
         infless::models::ModelZoo::qaRobotModels()) {
        auto fn = p.deploy(FunctionSpec{model, model, msToTicks(50), 32});
        p.injectTrace(fn, infless::workload::uniformArrivals(
                              5000.0, 45 * kTicksPerSec));
        fns.push_back(fn);
    }
    p.run(45 * kTicksPerSec);
    // Every function gets a meaningful share of service.
    std::int64_t least = INT64_MAX;
    std::int64_t most = 0;
    for (auto fn : fns) {
        least = std::min(least, p.functionMetrics(fn).completions());
        most = std::max(most, p.functionMetrics(fn).completions());
    }
    EXPECT_GT(least, 0);
    EXPECT_GT(least * 20, most); // within 20x of each other
}

TEST(ScalingBehaviorTest, AcceleratedColdStartsCutRampViolations)
{
    auto ramp_violations = [](infless::cluster::ColdStartParams params) {
        PlatformOptions opts;
        opts.coldStart = params;
        Platform p(4, opts);
        auto fn =
            p.deploy(FunctionSpec{"r", "ResNet-50", msToTicks(200), 32});
        p.injectTrace(fn, infless::workload::uniformArrivals(
                              80.0, 20 * kTicksPerSec));
        p.run(30 * kTicksPerSec);
        return p.totalMetrics().sloViolationRate() +
               static_cast<double>(p.totalMetrics().drops());
    };
    double stock = ramp_violations(infless::cluster::ColdStartParams{});
    double fast = ramp_violations(
        infless::cluster::acceleratedColdStartParams());
    // SOCK/Catalyzer-style startup shrinks the cold window, so the ramp
    // hurts less (3.5's suggestion for spikes LSTH cannot pre-warm).
    EXPECT_LT(fast, stock);
}

TEST(ScalingBehaviorTest, DrainingInstancesKeepServingDuringHandover)
{
    // Make-before-break: no request loss spike during reconfigurations.
    Platform p(4);
    auto fn = p.deploy(FunctionSpec{"r", "ResNet-50", msToTicks(200), 32});
    p.injectTrace(fn,
                  infless::workload::uniformArrivals(100.0,
                                                     2 * kTicksPerMin));
    p.run(30 * kTicksPerSec);
    auto drops_at_30s = p.totalMetrics().drops();
    p.run(2 * kTicksPerMin + 5 * kTicksPerSec);
    // All drops happen in the cold ramp; reconfigurations later must not
    // add more than a trickle.
    EXPECT_LE(p.totalMetrics().drops(), drops_at_30s + 40);
}

} // namespace
