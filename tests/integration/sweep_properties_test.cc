/**
 * @file
 * Parameterized property sweeps over the analytical layers: Eq. 1
 * bounds, AvailableConfig feasibility, COP consistency and the
 * execution surface, across every model in the zoo.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/logging.hh"

#include "cluster/cluster.hh"
#include "cluster/container_runtime.hh"
#include "core/rps_bounds.hh"
#include "core/scheduler.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"

namespace {

using infless::cluster::Resources;
using infless::core::execFeasible;
using infless::core::GreedyScheduler;
using infless::core::rpsBounds;
using infless::models::ExecModel;
using infless::models::ModelZoo;
using infless::profiler::CopPredictor;
using infless::profiler::OpProfileDb;
using infless::sim::msToTicks;
using infless::sim::Tick;

// ---------------------------------------------------------------------------
// Eq. 1 properties over a (slo, exec, batch) grid
// ---------------------------------------------------------------------------

class RpsBoundsSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(RpsBoundsSweep, BoundsAreOrderedAndScaleWithBatch)
{
    auto [slo_ms, exec_ms, batch] = GetParam();
    Tick slo = msToTicks(slo_ms);
    Tick exec = msToTicks(exec_ms);
    if (!execFeasible(exec, slo, batch))
        GTEST_SKIP() << "infeasible corner";

    auto bounds = rpsBounds(exec, slo, batch);
    EXPECT_LE(bounds.low, bounds.up);
    EXPECT_GE(bounds.low, 0.0);

    // r_up doubles with the batch (same execution time).
    if (execFeasible(exec, slo, batch * 2)) {
        auto doubled = rpsBounds(exec, slo, batch * 2);
        EXPECT_DOUBLE_EQ(doubled.up, 2.0 * bounds.up);
        EXPECT_GE(doubled.low, bounds.low);
    }

    // A faster execution never lowers the admissible window.
    Tick faster = exec / 2;
    if (faster > 0 && execFeasible(faster, slo, batch)) {
        auto quick = rpsBounds(faster, slo, batch);
        EXPECT_GE(quick.up, bounds.up);
        EXPECT_LE(quick.low, bounds.low);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RpsBoundsSweep,
    ::testing::Combine(::testing::Values(50, 150, 300),
                       ::testing::Values(10, 40, 70, 140),
                       ::testing::Values(1, 4, 16)),
    [](const auto &info) {
        return "slo" + std::to_string(std::get<0>(info.param)) + "_exec" +
               std::to_string(std::get<1>(info.param)) + "_b" +
               std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Per-model properties across the whole zoo
// ---------------------------------------------------------------------------

class ZooSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    static ExecModel &
    exec()
    {
        static ExecModel instance;
        return instance;
    }
    static OpProfileDb &
    db()
    {
        static OpProfileDb instance(exec());
        return instance;
    }
    static CopPredictor &
    cop()
    {
        static CopPredictor instance(db());
        return instance;
    }
};

TEST_P(ZooSweep, ExecutionTimeMonotoneInResources)
{
    const auto &model = ModelZoo::shared().get(GetParam());
    // More GPU never slows a batch down; more CPU never slows it down.
    Tick weak_gpu = exec().trueTicks(model, 4, Resources{1000, 5, 0});
    Tick strong_gpu = exec().trueTicks(model, 4, Resources{1000, 40, 0});
    EXPECT_GE(static_cast<double>(weak_gpu) * 1.35,
              static_cast<double>(strong_gpu))
        << "GPU scaling violated (beyond deviation slack)";

    Tick weak_cpu = exec().trueTicks(model, 1, Resources{500, 0, 0});
    Tick strong_cpu = exec().trueTicks(model, 1, Resources{8000, 0, 0});
    EXPECT_GE(static_cast<double>(weak_cpu) * 1.35,
              static_cast<double>(strong_cpu));
}

TEST_P(ZooSweep, PredictionWithinSafetyEnvelope)
{
    // With the 10% offset, predictions should rarely fall below truth by
    // more than the deviation the surface can produce.
    const auto &model = ModelZoo::shared().get(GetParam());
    for (int b : {1, 8, 32}) {
        for (std::int64_t gpu : {0, 10, 30}) {
            Resources res{2000, gpu, 0};
            double predicted =
                static_cast<double>(cop().predict(model, b, res));
            double truth =
                static_cast<double>(exec().trueTicks(model, b, res));
            EXPECT_GT(predicted, truth * 0.75)
                << GetParam() << " b=" << b << " gpu=" << gpu;
            EXPECT_LT(predicted, truth * 2.0)
                << GetParam() << " b=" << b << " gpu=" << gpu;
        }
    }
}

TEST_P(ZooSweep, SchedulerCoversModerateDemandWhenFeasible)
{
    const auto &model = ModelZoo::shared().get(GetParam());
    GreedyScheduler sched(cop());
    infless::cluster::Cluster cluster(8);
    Tick slo = model.gflops > 1.0 ? msToTicks(300) : msToTicks(80);
    auto plans = sched.schedule(model, 80.0, slo, 32, cluster);
    ASSERT_FALSE(plans.empty()) << GetParam();
    double covered = 0.0;
    for (const auto &plan : plans) {
        covered += plan.bounds.up;
        EXPECT_TRUE(execFeasible(plan.execPredicted, slo,
                                 plan.config.batchSize))
            << GetParam();
    }
    EXPECT_GE(covered, 80.0) << GetParam();
}

TEST_P(ZooSweep, ColdStartDominatedByModelSizeForLargeModels)
{
    const auto &model = ModelZoo::shared().get(GetParam());
    infless::cluster::ContainerRuntime runtime;
    Tick cold = runtime.coldStartTicks(model.sizeMb);
    // Everything pays at least the fixed container+library cost.
    EXPECT_GE(cold, runtime.coldStartTicks(0));
    if (model.sizeMb > 100) {
        EXPECT_GT(cold - runtime.coldStartTicks(0),
                  runtime.coldStartTicks(0) / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooSweep,
    ::testing::Values("Bert-v1", "ResNet-50", "VGGNet", "LSTM-2365",
                      "ResNet-20", "SSD", "DSSM-2365", "DeepSpeech",
                      "MobileNet", "TextCNN-69", "MNIST"),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
