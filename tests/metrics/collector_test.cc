/**
 * @file
 * Unit tests for the run-metrics collector.
 */

#include <gtest/gtest.h>

#include "cluster/resources.hh"
#include "metrics/collector.hh"

namespace {

using infless::cluster::Resources;
using infless::metrics::LatencyBreakdown;
using infless::metrics::RunMetrics;
using infless::sim::kTicksPerMs;
using infless::sim::kTicksPerSec;

TEST(RunMetricsTest, CompletionAndViolationCounting)
{
    RunMetrics m;
    m.recordArrival(0);
    m.recordArrival(0);
    LatencyBreakdown ok{0, 10 * kTicksPerMs, 20 * kTicksPerMs};
    LatencyBreakdown late{0, 150 * kTicksPerMs, 100 * kTicksPerMs};
    m.recordCompletion(1, ok, 200 * kTicksPerMs);
    m.recordCompletion(2, late, 200 * kTicksPerMs);
    EXPECT_EQ(m.completions(), 2);
    EXPECT_EQ(m.sloViolations(), 1);
    EXPECT_DOUBLE_EQ(m.sloViolationRate(), 0.5);
}

TEST(RunMetricsTest, DropsCountAsViolations)
{
    RunMetrics m;
    LatencyBreakdown ok{0, 1, 1};
    m.recordCompletion(1, ok, kTicksPerSec);
    m.recordDrop(2);
    EXPECT_DOUBLE_EQ(m.sloViolationRate(), 0.5);
}

TEST(RunMetricsTest, ZeroSloDisablesViolationAccounting)
{
    RunMetrics m;
    LatencyBreakdown slow{0, kTicksPerSec, kTicksPerSec};
    m.recordCompletion(1, slow, 0);
    EXPECT_EQ(m.sloViolations(), 0);
}

TEST(RunMetricsTest, ColdLaunchRate)
{
    RunMetrics m;
    m.recordLaunch(true);
    m.recordLaunch(false);
    m.recordLaunch(false);
    m.recordLaunch(false);
    EXPECT_EQ(m.launches(), 4);
    EXPECT_DOUBLE_EQ(m.coldLaunchRate(), 0.25);
}

TEST(RunMetricsTest, BatchFillAveraging)
{
    RunMetrics m;
    m.recordBatch(8);
    m.recordBatch(4);
    m.recordBatch(6);
    EXPECT_EQ(m.batches(), 3);
    EXPECT_DOUBLE_EQ(m.meanBatchFill(), 6.0);
}

TEST(RunMetricsTest, ThroughputRps)
{
    RunMetrics m;
    LatencyBreakdown parts{0, 1, 1};
    for (int i = 0; i < 500; ++i)
        m.recordCompletion(i, parts, 0);
    EXPECT_DOUBLE_EQ(m.throughputRps(10 * kTicksPerSec), 50.0);
    EXPECT_DOUBLE_EQ(m.throughputRps(0), 0.0);
}

TEST(RunMetricsTest, ResourceIntegrals)
{
    RunMetrics m;
    m.recordAllocation(0, Resources{2000, 50, 2048});
    m.recordAllocation(5 * kTicksPerSec, Resources{4000, 100, 4096});
    // 5s at 2 cores + 5s at 4 cores = 30 core-seconds.
    EXPECT_DOUBLE_EQ(m.cpuCoreSeconds(10 * kTicksPerSec), 30.0);
    // 5s at 0.5 GPU + 5s at 1.0 GPU = 7.5 device-seconds.
    EXPECT_DOUBLE_EQ(m.gpuDeviceSeconds(10 * kTicksPerSec), 7.5);
    EXPECT_DOUBLE_EQ(m.meanCpuCores(10 * kTicksPerSec), 3.0);
    // Memory: 5s at 2 GB + 5s at 4 GB = 30 GB-seconds.
    EXPECT_DOUBLE_EQ(m.memoryGbSeconds(10 * kTicksPerSec), 30.0);
}

TEST(RunMetricsTest, ThroughputPerResource)
{
    RunMetrics m;
    LatencyBreakdown parts{0, 1, 1};
    for (int i = 0; i < 100; ++i)
        m.recordCompletion(i, parts, 0);
    m.recordAllocation(0, Resources{0, 100, 0}); // one full GPU
    // 100 completions over 10 GPU-seconds -> 10 per weighted-second.
    double tpr = m.throughputPerResource(10 * kTicksPerSec, 0.003);
    EXPECT_NEAR(tpr, 10.0, 1e-9);
}

TEST(RunMetricsTest, MergeCountersAggregates)
{
    RunMetrics a, b;
    a.recordArrival(0);
    a.recordCompletion(1, LatencyBreakdown{0, 1, 1}, 0);
    b.recordArrival(0);
    b.recordDrop(1);
    b.recordLaunch(true);
    b.recordBatch(4);
    a.mergeCounters(b);
    EXPECT_EQ(a.arrivals(), 2);
    EXPECT_EQ(a.completions(), 1);
    EXPECT_EQ(a.drops(), 1);
    EXPECT_EQ(a.coldLaunches(), 1);
    EXPECT_EQ(a.batches(), 1);
}

TEST(RunMetricsTest, LatencyBreakdownHistogramsFill)
{
    RunMetrics m;
    LatencyBreakdown parts{5 * kTicksPerMs, 10 * kTicksPerMs,
                           20 * kTicksPerMs};
    m.recordCompletion(1, parts, 0);
    EXPECT_EQ(m.coldTime().count(), 1);
    EXPECT_EQ(m.queueTime().count(), 1);
    EXPECT_EQ(m.execTime().count(), 1);
    EXPECT_DOUBLE_EQ(m.latency().mean(), 35.0 * kTicksPerMs);
}

TEST(LatencyBreakdownTest, TotalSumsParts)
{
    LatencyBreakdown parts{1, 2, 3};
    EXPECT_EQ(parts.total(), 6);
}

} // namespace
