/**
 * @file
 * Unit tests for the Table 4 cost model.
 */

#include <gtest/gtest.h>

#include "cluster/resources.hh"
#include "metrics/collector.hh"
#include "metrics/cost_model.hh"

namespace {

using infless::cluster::Resources;
using infless::metrics::computeCost;
using infless::metrics::costFromAverages;
using infless::metrics::LatencyBreakdown;
using infless::metrics::PriceSheet;
using infless::metrics::RunMetrics;
using infless::sim::kTicksPerSec;

TEST(CostModelTest, ResourcesPer100Rps)
{
    auto report = costFromAverages("x", 50.0, 2.0, 100.0);
    EXPECT_DOUBLE_EQ(report.cpusPer100Rps, 50.0);
    EXPECT_DOUBLE_EQ(report.gpusPer100Rps, 2.0);
}

TEST(CostModelTest, CostPerRequestUsesPriceSheet)
{
    PriceSheet prices;
    prices.cpuPerCoreHour = 3600.0; // $1 per core-second for easy math
    prices.gpuPerHour = 0.0;
    auto report = costFromAverages("x", 10.0, 0.0, 100.0, prices);
    // $10/second over 100 requests/second -> $0.1 per request.
    EXPECT_NEAR(report.costPerRequest, 0.1, 1e-12);
}

TEST(CostModelTest, ZeroRpsYieldsZeroes)
{
    auto report = costFromAverages("x", 10.0, 1.0, 0.0);
    EXPECT_DOUBLE_EQ(report.costPerRequest, 0.0);
    EXPECT_DOUBLE_EQ(report.cpusPer100Rps, 0.0);
}

TEST(CostModelTest, ComputeCostFromRunMetrics)
{
    RunMetrics m;
    m.recordAllocation(0, Resources{4000, 100, 0});
    LatencyBreakdown parts{0, 1, 1};
    for (int i = 0; i < 1000; ++i)
        m.recordCompletion(i, parts, 0);
    auto report = computeCost("sys", m, 10 * kTicksPerSec);
    EXPECT_EQ(report.system, "sys");
    // 4 cores and 1 GPU serving 100 RPS.
    EXPECT_NEAR(report.cpusPer100Rps, 4.0, 1e-9);
    EXPECT_NEAR(report.gpusPer100Rps, 1.0, 1e-9);
    EXPECT_GT(report.costPerRequest, 0.0);
}

TEST(CostModelTest, DefaultPricesMatchPaper)
{
    PriceSheet prices;
    EXPECT_DOUBLE_EQ(prices.cpuPerCoreHour, 0.034);
    EXPECT_DOUBLE_EQ(prices.gpuPerHour, 2.5);
}

TEST(CostModelTest, GpuHeavySystemCostsMoreThanGpuLight)
{
    auto heavy = costFromAverages("heavy", 10.0, 5.0, 100.0);
    auto light = costFromAverages("light", 10.0, 0.5, 100.0);
    EXPECT_GT(heavy.costPerRequest, light.costPerRequest);
}

} // namespace
