/**
 * @file
 * Unit tests for the report formatting helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/report.hh"
#include "sim/logging.hh"

namespace {

using infless::metrics::fmt;
using infless::metrics::fmtPercent;
using infless::metrics::fmtSci;
using infless::metrics::printHeading;
using infless::metrics::TextTable;

TEST(ReportTest, FmtFixedPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(ReportTest, FmtSci)
{
    EXPECT_EQ(fmtSci(1234.5, 2), "1.23e+03");
    EXPECT_EQ(fmtSci(0.00016, 1), "1.6e-04");
}

TEST(ReportTest, FmtPercent)
{
    EXPECT_EQ(fmtPercent(0.031), "3.1%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(ReportTest, TableAlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12345"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTest, RowArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), infless::sim::PanicError);
}

TEST(ReportTest, EmptyHeaderRejected)
{
    EXPECT_THROW(TextTable({}), infless::sim::PanicError);
}

TEST(ReportTest, HeadingFormat)
{
    std::ostringstream os;
    printHeading(os, "Figure 12(a)");
    EXPECT_EQ(os.str(), "\n== Figure 12(a) ==\n");
}

TEST(ReportTest, RowCount)
{
    TextTable t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

} // namespace
