/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "metrics/stats.hh"

namespace {

using infless::metrics::LatencyHistogram;
using infless::metrics::TimeWeightedMean;
using infless::sim::kTicksPerMs;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

TEST(LatencyHistogramTest, EmptyReportsZeroes)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.percentile(50), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogramTest, MeanMinMaxExact)
{
    LatencyHistogram h;
    h.record(10 * kTicksPerMs);
    h.record(20 * kTicksPerMs);
    h.record(30 * kTicksPerMs);
    EXPECT_EQ(h.count(), 3);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0 * kTicksPerMs);
    EXPECT_EQ(h.min(), 10 * kTicksPerMs);
    EXPECT_EQ(h.max(), 30 * kTicksPerMs);
}

TEST(LatencyHistogramTest, PercentileWithinRelativeError)
{
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(i * kTicksPerMs);
    // p50 should be near 500ms with ~10% bucket error.
    auto p50 = static_cast<double>(h.percentile(50));
    EXPECT_NEAR(p50 / (500.0 * kTicksPerMs), 1.0, 0.12);
    auto p99 = static_cast<double>(h.percentile(99));
    EXPECT_NEAR(p99 / (990.0 * kTicksPerMs), 1.0, 0.12);
}

TEST(LatencyHistogramTest, PercentileBoundedByObservedMax)
{
    LatencyHistogram h;
    h.record(123);
    EXPECT_LE(h.percentile(100), 123);
}

TEST(LatencyHistogramTest, FractionAboveThreshold)
{
    LatencyHistogram h;
    for (int i = 0; i < 90; ++i)
        h.record(10 * kTicksPerMs);
    for (int i = 0; i < 10; ++i)
        h.record(1000 * kTicksPerMs);
    double above = h.fractionAbove(100 * kTicksPerMs);
    EXPECT_NEAR(above, 0.10, 0.02);
}

TEST(LatencyHistogramTest, NegativeSamplesClampToZero)
{
    LatencyHistogram h;
    h.record(-50);
    EXPECT_EQ(h.count(), 1);
    EXPECT_EQ(h.min(), 0);
}

TEST(LatencyHistogramTest, OversizedSamplesClampToMax)
{
    LatencyHistogram h(1.1, kTicksPerSec);
    h.record(100 * kTicksPerSec);
    EXPECT_LE(h.max(), kTicksPerSec);
}

TEST(LatencyHistogramTest, MergeCombinesCounts)
{
    LatencyHistogram a, b;
    a.record(10 * kTicksPerMs);
    b.record(30 * kTicksPerMs);
    b.record(50 * kTicksPerMs);
    a.merge(b);
    EXPECT_EQ(a.count(), 3);
    EXPECT_EQ(a.min(), 10 * kTicksPerMs);
    EXPECT_EQ(a.max(), 50 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(a.mean(), 30.0 * kTicksPerMs);
}

TEST(LatencyHistogramTest, BadGrowthRejected)
{
    EXPECT_THROW(LatencyHistogram(1.0), infless::sim::PanicError);
}

TEST(TimeWeightedMeanTest, ConstantSignal)
{
    TimeWeightedMean m;
    m.update(0, 5.0);
    EXPECT_DOUBLE_EQ(m.meanUntil(100), 5.0);
}

TEST(TimeWeightedMeanTest, StepSignal)
{
    TimeWeightedMean m;
    m.update(0, 0.0);
    m.update(50, 10.0);
    // 50 ticks at 0, 50 ticks at 10 -> mean 5.
    EXPECT_DOUBLE_EQ(m.meanUntil(100), 5.0);
}

TEST(TimeWeightedMeanTest, IntegralIncludesRunningSegment)
{
    TimeWeightedMean m;
    m.update(0, 2.0);
    m.update(10, 4.0);
    EXPECT_DOUBLE_EQ(m.integralUntil(10), 20.0);
    EXPECT_DOUBLE_EQ(m.integralUntil(20), 20.0 + 40.0);
}

TEST(TimeWeightedMeanTest, BeforeFirstUpdateIsZero)
{
    TimeWeightedMean m;
    EXPECT_DOUBLE_EQ(m.meanUntil(100), 0.0);
    EXPECT_DOUBLE_EQ(m.integralUntil(100), 0.0);
}

TEST(TimeWeightedMeanTest, LateStartExcludesEarlyWindow)
{
    TimeWeightedMean m;
    m.update(100, 10.0);
    // Mean is over [100, 200], not [0, 200].
    EXPECT_DOUBLE_EQ(m.meanUntil(200), 10.0);
}

TEST(TimeWeightedMeanTest, TimeGoingBackwardsPanics)
{
    TimeWeightedMean m;
    m.update(100, 1.0);
    EXPECT_THROW(m.update(50, 2.0), infless::sim::PanicError);
}

TEST(TimeWeightedMeanTest, CurrentReflectsLastValue)
{
    TimeWeightedMean m;
    m.update(0, 1.0);
    m.update(10, 7.5);
    EXPECT_DOUBLE_EQ(m.current(), 7.5);
}

TEST(TimeWeightedMeanTest, MergeSumsSignals)
{
    // Two shards tracking disjoint fleet slices: the merged signal is
    // their sum, integral and current value alike.
    TimeWeightedMean a;
    a.update(0, 2.0);
    a.update(50, 4.0); // integral 100 by t=50
    TimeWeightedMean b;
    b.update(0, 1.0); // integral 100 by t=100

    a.merge(b, 100);
    // a alone: 100 + 4*50 = 300; b alone: 100. Sum 400 over [0, 100].
    EXPECT_DOUBLE_EQ(a.integralUntil(100), 400.0);
    EXPECT_DOUBLE_EQ(a.meanUntil(100), 4.0);
    EXPECT_DOUBLE_EQ(a.current(), 5.0);
    // The merged signal keeps integrating the summed rate.
    EXPECT_DOUBLE_EQ(a.integralUntil(110), 450.0);
}

TEST(TimeWeightedMeanTest, MergeWithUnstartedShardIsIdentity)
{
    TimeWeightedMean a;
    a.update(0, 3.0);
    TimeWeightedMean empty;
    a.merge(empty, 100);
    EXPECT_DOUBLE_EQ(a.meanUntil(100), 3.0);

    // And merging INTO an unstarted shard adopts the other signal.
    TimeWeightedMean fresh;
    fresh.merge(a, 100);
    EXPECT_DOUBLE_EQ(fresh.integralUntil(100), a.integralUntil(100));
    EXPECT_DOUBLE_EQ(fresh.current(), 3.0);
}

TEST(TimeWeightedMeanTest, MergeOfLateStarterKeepsEarliestWindow)
{
    TimeWeightedMean a;
    a.update(100, 10.0);
    TimeWeightedMean b;
    b.update(0, 2.0);
    a.merge(b, 200);
    // Window opens at b's start: (10*100 + 2*200) / 200.
    EXPECT_DOUBLE_EQ(a.meanUntil(200), 7.0);
}

} // namespace
