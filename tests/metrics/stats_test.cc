/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"

#include "metrics/stats.hh"

namespace {

using infless::metrics::LatencyHistogram;
using infless::metrics::TimeWeightedMean;
using infless::sim::kTicksPerMs;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

TEST(LatencyHistogramTest, EmptyReportsZeroes)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.percentile(50), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogramTest, MeanMinMaxExact)
{
    LatencyHistogram h;
    h.record(10 * kTicksPerMs);
    h.record(20 * kTicksPerMs);
    h.record(30 * kTicksPerMs);
    EXPECT_EQ(h.count(), 3);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0 * kTicksPerMs);
    EXPECT_EQ(h.min(), 10 * kTicksPerMs);
    EXPECT_EQ(h.max(), 30 * kTicksPerMs);
}

TEST(LatencyHistogramTest, PercentileWithinRelativeError)
{
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(i * kTicksPerMs);
    // p50 should be near 500ms with ~10% bucket error.
    auto p50 = static_cast<double>(h.percentile(50));
    EXPECT_NEAR(p50 / (500.0 * kTicksPerMs), 1.0, 0.12);
    auto p99 = static_cast<double>(h.percentile(99));
    EXPECT_NEAR(p99 / (990.0 * kTicksPerMs), 1.0, 0.12);
}

TEST(LatencyHistogramTest, PercentileBoundedByObservedMax)
{
    LatencyHistogram h;
    h.record(123);
    EXPECT_LE(h.percentile(100), 123);
}

TEST(LatencyHistogramTest, FractionAboveThreshold)
{
    LatencyHistogram h;
    for (int i = 0; i < 90; ++i)
        h.record(10 * kTicksPerMs);
    for (int i = 0; i < 10; ++i)
        h.record(1000 * kTicksPerMs);
    double above = h.fractionAbove(100 * kTicksPerMs);
    EXPECT_NEAR(above, 0.10, 0.02);
}

TEST(LatencyHistogramTest, NegativeSamplesClampToZero)
{
    LatencyHistogram h;
    h.record(-50);
    EXPECT_EQ(h.count(), 1);
    EXPECT_EQ(h.min(), 0);
}

TEST(LatencyHistogramTest, OversizedSamplesClampToMax)
{
    LatencyHistogram h(1.1, kTicksPerSec);
    h.record(100 * kTicksPerSec);
    EXPECT_LE(h.max(), kTicksPerSec);
}

TEST(LatencyHistogramTest, MergeCombinesCounts)
{
    LatencyHistogram a, b;
    a.record(10 * kTicksPerMs);
    b.record(30 * kTicksPerMs);
    b.record(50 * kTicksPerMs);
    a.merge(b);
    EXPECT_EQ(a.count(), 3);
    EXPECT_EQ(a.min(), 10 * kTicksPerMs);
    EXPECT_EQ(a.max(), 50 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(a.mean(), 30.0 * kTicksPerMs);
}

TEST(LatencyHistogramTest, BadGrowthRejected)
{
    EXPECT_THROW(LatencyHistogram(1.0), infless::sim::PanicError);
}

TEST(LatencyHistogramTest, MergeRejectsMismatchedParameters)
{
    // Equal bucket counts are not enough: (growth, max) must match or
    // the bins mean different things.
    LatencyHistogram a(1.1, kTicksPerSec);
    LatencyHistogram other_growth(1.2, kTicksPerSec);
    EXPECT_THROW(a.merge(other_growth), infless::sim::PanicError);
    LatencyHistogram other_max(1.1, 2 * kTicksPerSec);
    EXPECT_THROW(a.merge(other_max), infless::sim::PanicError);
}

TEST(LatencyHistogramTest, BucketAccessorsAreConsistent)
{
    LatencyHistogram h;
    h.record(10 * kTicksPerMs);
    h.record(20 * kTicksPerMs);
    h.record(20 * kTicksPerMs);

    std::int64_t total = 0;
    Tick prev_edge = 0;
    for (std::size_t b = 0; b < h.bucketCount(); ++b) {
        total += h.bucketSamples(b);
        EXPECT_GE(h.bucketUpperBound(b), prev_edge);
        prev_edge = h.bucketUpperBound(b);
    }
    EXPECT_EQ(total, h.count());
    EXPECT_DOUBLE_EQ(h.sum(), 50.0 * kTicksPerMs);
    // Every sample sits in a bucket whose upper edge covers it.
    EXPECT_GE(h.bucketUpperBound(h.bucketCount() - 1), h.max());
}

TEST(LatencyHistogramTest, FractionAboveEdges)
{
    LatencyHistogram empty;
    EXPECT_DOUBLE_EQ(empty.fractionAbove(0), 0.0);

    LatencyHistogram h;
    h.record(0);
    h.record(5 * kTicksPerMs);
    // A zero sample is never above a zero threshold; the 5ms one is.
    EXPECT_DOUBLE_EQ(h.fractionAbove(0), 0.5);
    // Nothing exceeds the representable range.
    EXPECT_DOUBLE_EQ(h.fractionAbove(infless::sim::kTicksPerHour), 0.0);
    // A threshold above every sample reports zero.
    EXPECT_DOUBLE_EQ(h.fractionAbove(10 * kTicksPerMs), 0.0);
}

TEST(LatencyHistogramTest, QuantilesStayWithinRelativeBucketError)
{
    // Property pin of the class doc: geometric buckets bound the relative
    // quantile error. Growth 1.05 keeps estimates within ~5% of the exact
    // empirical quantile on a deterministic pseudo-random sample.
    LatencyHistogram h(1.05);
    std::vector<Tick> values;
    std::uint64_t x = 0x9E3779B97F4A7C15ULL;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        Tick v = 1 + static_cast<Tick>((x >> 33) % 1'000'000);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        auto target = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(values.size())));
        double exact = static_cast<double>(values[target - 1]);
        double approx = static_cast<double>(h.percentile(p));
        EXPECT_NEAR(approx / exact, 1.0, 0.06) << "p" << p;
    }
}

TEST(TimeWeightedMeanTest, ConstantSignal)
{
    TimeWeightedMean m;
    m.update(0, 5.0);
    EXPECT_DOUBLE_EQ(m.meanUntil(100), 5.0);
}

TEST(TimeWeightedMeanTest, StepSignal)
{
    TimeWeightedMean m;
    m.update(0, 0.0);
    m.update(50, 10.0);
    // 50 ticks at 0, 50 ticks at 10 -> mean 5.
    EXPECT_DOUBLE_EQ(m.meanUntil(100), 5.0);
}

TEST(TimeWeightedMeanTest, IntegralIncludesRunningSegment)
{
    TimeWeightedMean m;
    m.update(0, 2.0);
    m.update(10, 4.0);
    EXPECT_DOUBLE_EQ(m.integralUntil(10), 20.0);
    EXPECT_DOUBLE_EQ(m.integralUntil(20), 20.0 + 40.0);
}

TEST(TimeWeightedMeanTest, BeforeFirstUpdateIsZero)
{
    TimeWeightedMean m;
    EXPECT_DOUBLE_EQ(m.meanUntil(100), 0.0);
    EXPECT_DOUBLE_EQ(m.integralUntil(100), 0.0);
}

TEST(TimeWeightedMeanTest, LateStartExcludesEarlyWindow)
{
    TimeWeightedMean m;
    m.update(100, 10.0);
    // Mean is over [100, 200], not [0, 200].
    EXPECT_DOUBLE_EQ(m.meanUntil(200), 10.0);
}

TEST(TimeWeightedMeanTest, TimeGoingBackwardsPanics)
{
    TimeWeightedMean m;
    m.update(100, 1.0);
    EXPECT_THROW(m.update(50, 2.0), infless::sim::PanicError);
}

TEST(TimeWeightedMeanTest, CurrentReflectsLastValue)
{
    TimeWeightedMean m;
    m.update(0, 1.0);
    m.update(10, 7.5);
    EXPECT_DOUBLE_EQ(m.current(), 7.5);
}

TEST(TimeWeightedMeanTest, MergeSumsSignals)
{
    // Two shards tracking disjoint fleet slices: the merged signal is
    // their sum, integral and current value alike.
    TimeWeightedMean a;
    a.update(0, 2.0);
    a.update(50, 4.0); // integral 100 by t=50
    TimeWeightedMean b;
    b.update(0, 1.0); // integral 100 by t=100

    a.merge(b, 100);
    // a alone: 100 + 4*50 = 300; b alone: 100. Sum 400 over [0, 100].
    EXPECT_DOUBLE_EQ(a.integralUntil(100), 400.0);
    EXPECT_DOUBLE_EQ(a.meanUntil(100), 4.0);
    EXPECT_DOUBLE_EQ(a.current(), 5.0);
    // The merged signal keeps integrating the summed rate.
    EXPECT_DOUBLE_EQ(a.integralUntil(110), 450.0);
}

TEST(TimeWeightedMeanTest, MergeWithUnstartedShardIsIdentity)
{
    TimeWeightedMean a;
    a.update(0, 3.0);
    TimeWeightedMean empty;
    a.merge(empty, 100);
    EXPECT_DOUBLE_EQ(a.meanUntil(100), 3.0);

    // And merging INTO an unstarted shard adopts the other signal.
    TimeWeightedMean fresh;
    fresh.merge(a, 100);
    EXPECT_DOUBLE_EQ(fresh.integralUntil(100), a.integralUntil(100));
    EXPECT_DOUBLE_EQ(fresh.current(), 3.0);
}

TEST(TimeWeightedMeanTest, MergeOfLateStarterKeepsEarliestWindow)
{
    TimeWeightedMean a;
    a.update(100, 10.0);
    TimeWeightedMean b;
    b.update(0, 2.0);
    a.merge(b, 200);
    // Window opens at b's start: (10*100 + 2*200) / 200.
    EXPECT_DOUBLE_EQ(a.meanUntil(200), 7.0);
}

} // namespace
