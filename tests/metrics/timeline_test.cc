/**
 * @file
 * Tests for the timeline sampler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"

#include "metrics/timeline.hh"

namespace {

using infless::metrics::TimelineSampler;
using infless::sim::kTicksPerSec;
using infless::sim::Simulation;

TEST(TimelineTest, SamplesOnThePeriod)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    int counter = 0;
    sampler.track("counter", [&] { return static_cast<double>(counter); });
    sim.every(kTicksPerSec / 2, [&] { ++counter; }, 10 * kTicksPerSec);
    sim.runUntil(5 * kTicksPerSec);

    ASSERT_EQ(sampler.sampleCount(), 5u);
    EXPECT_EQ(sampler.times().front(), kTicksPerSec);
    // Same-tick ordering is insertion order: the sampler's t=1s event was
    // scheduled before the incrementer's, so it sees only the 0.5s tick.
    EXPECT_DOUBLE_EQ(sampler.series("counter")[0], 1.0);
    EXPECT_DOUBLE_EQ(sampler.series("counter")[4], 9.0);
}

TEST(TimelineTest, MultipleSeriesShareTimestamps)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    sampler.track("a", [] { return 1.0; });
    sampler.track("b", [] { return 2.0; });
    sim.runUntil(3 * kTicksPerSec);
    EXPECT_EQ(sampler.series("a").size(), sampler.times().size());
    EXPECT_EQ(sampler.series("b").size(), sampler.times().size());
    EXPECT_EQ(sampler.names(),
              (std::vector<std::string>{"a", "b"}));
}

TEST(TimelineTest, StopEndsSampling)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    sampler.track("x", [] { return 0.0; });
    sim.runUntil(2 * kTicksPerSec);
    sampler.stop();
    sim.runUntil(10 * kTicksPerSec);
    EXPECT_EQ(sampler.sampleCount(), 2u);
}

TEST(TimelineTest, CsvOutput)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    double v = 0.0;
    sampler.track("value", [&] { return v += 0.5; });
    sim.runUntil(2 * kTicksPerSec);
    std::ostringstream os;
    sampler.writeCsv(os);
    EXPECT_EQ(os.str(), "time_sec,value\n1,0.5\n2,1\n");
}

TEST(TimelineTest, JsonOutput)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    double v = 0.0;
    sampler.track("value", [&] { return v += 0.5; });
    sampler.track("flat", [] { return 2.0; });
    sim.runUntil(2 * kTicksPerSec);
    std::ostringstream os;
    sampler.writeJson(os);
    EXPECT_EQ(os.str(), "{\n  \"time_sec\": [1, 2],\n  \"series\": {\n"
                        "    \"value\": [0.5, 1],\n"
                        "    \"flat\": [2, 2]\n  }\n}\n");
}

TEST(TimelineTest, JsonOutputEmptySampler)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    std::ostringstream os;
    sampler.writeJson(os);
    EXPECT_EQ(os.str(), "{\n  \"time_sec\": [],\n  \"series\": {"
                        "\n  }\n}\n");
}

TEST(TimelineTest, CounterSeriesStoresDeltas)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    // A cumulative counter with a burst between samples 2 and 3: the
    // stored series must show the per-interval deltas (the burst as a
    // spike), not the monotone ramp.
    double cumulative = 0.0;
    sampler.trackCounter("drops", [&] { return cumulative; });
    sampler.track("raw", [&] { return cumulative; });
    sim.at(sim.now() + kTicksPerSec / 2, [&] { cumulative = 3.0; });
    sim.at(sim.now() + 2 * kTicksPerSec + kTicksPerSec / 2,
           [&] { cumulative = 10.0; });
    sim.runUntil(4 * kTicksPerSec);

    ASSERT_EQ(sampler.sampleCount(), 4u);
    EXPECT_EQ(sampler.series("drops"),
              (std::vector<double>{3.0, 0.0, 7.0, 0.0}));
    EXPECT_EQ(sampler.series("raw"),
              (std::vector<double>{3.0, 3.0, 10.0, 10.0}));
}

TEST(TimelineTest, CounterFirstIntervalIsDeltaFromZero)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    // A counter already past zero before the first sample: the first
    // interval reports the full cumulative value (delta from zero).
    double cumulative = 5.0;
    sampler.trackCounter("events", [&] { return cumulative; });
    sim.runUntil(kTicksPerSec);

    ASSERT_EQ(sampler.sampleCount(), 1u);
    EXPECT_EQ(sampler.series("events"), (std::vector<double>{5.0}));
}

TEST(TimelineTest, CounterResetRestartsTheRamp)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    // A counter that moves backwards (source reset): the sampler must
    // not record a negative delta; the new cumulative value restarts
    // the ramp.
    double cumulative = 5.0;
    sampler.trackCounter("resets", [&] { return cumulative; });
    sim.at(sim.now() + kTicksPerSec + kTicksPerSec / 2,
           [&] { cumulative = 2.0; });
    sim.runUntil(2 * kTicksPerSec);

    ASSERT_EQ(sampler.sampleCount(), 2u);
    EXPECT_EQ(sampler.series("resets"), (std::vector<double>{5.0, 2.0}));
}

TEST(TimelineTest, DuplicateCounterNamePanics)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    sampler.trackCounter("x", [] { return 0.0; });
    EXPECT_THROW(sampler.trackCounter("x", [] { return 0.0; }),
                 infless::sim::PanicError);
    // Mixed kinds collide on the same name too.
    EXPECT_THROW(sampler.track("x", [] { return 0.0; }),
                 infless::sim::PanicError);
}

TEST(TimelineTest, UnknownSeriesPanics)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    EXPECT_THROW(sampler.series("nope"), infless::sim::PanicError);
}

TEST(TimelineTest, DuplicateSeriesPanics)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    sampler.track("x", [] { return 0.0; });
    EXPECT_THROW(sampler.track("x", [] { return 0.0; }),
                 infless::sim::PanicError);
}

TEST(TimelineTest, TrackAfterSamplingPanics)
{
    Simulation sim;
    TimelineSampler sampler(sim, kTicksPerSec);
    sampler.track("x", [] { return 0.0; });
    sim.runUntil(kTicksPerSec);
    EXPECT_THROW(sampler.track("late", [] { return 0.0; }),
                 infless::sim::PanicError);
}

} // namespace
