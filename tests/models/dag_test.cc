/**
 * @file
 * Unit tests for the operator DAG and the chain/branch composition rule.
 */

#include <gtest/gtest.h>

#include "models/dag.hh"
#include "sim/logging.hh"

namespace {

using infless::models::Dag;
using infless::models::DagBuilder;
using infless::models::OpKind;
using infless::models::OpNode;
using infless::sim::PanicError;

OpNode
node(double gflops, OpKind kind = OpKind::MatMul)
{
    return OpNode{kind, gflops};
}

TEST(DagTest, ChainCriticalPathIsSum)
{
    DagBuilder b;
    b.chain(node(1.0));
    b.chain(node(2.0));
    b.chain(node(3.0));
    Dag dag = b.build();
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    EXPECT_DOUBLE_EQ(dag.criticalPath(weight), 6.0);
    EXPECT_DOUBLE_EQ(dag.totalWork(weight), 6.0);
    EXPECT_DOUBLE_EQ(dag.branchOverlap(), 0.0);
}

TEST(DagTest, ParallelBranchesTakeMax)
{
    DagBuilder b;
    b.chain(node(1.0));
    b.parallel({{node(5.0)}, {node(2.0)}, {node(3.0)}},
               node(1.0, OpKind::ConcatV2));
    Dag dag = b.build();
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    // 1 (head) + max(5,2,3) + 1 (join) = 7
    EXPECT_DOUBLE_EQ(dag.criticalPath(weight), 7.0);
    EXPECT_DOUBLE_EQ(dag.totalWork(weight), 12.0);
    EXPECT_GT(dag.branchOverlap(), 0.0);
}

TEST(DagTest, MixedChainAndBranchComposition)
{
    DagBuilder b;
    b.chain(node(2.0));
    b.parallel({{node(4.0), node(1.0)}, {node(3.0)}},
               node(0.5, OpKind::Sum));
    b.chain(node(1.5));
    Dag dag = b.build();
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    // 2 + max(4+1, 3) + 0.5 + 1.5 = 9
    EXPECT_DOUBLE_EQ(dag.criticalPath(weight), 9.0);
}

TEST(DagTest, EmptyBranchActsAsResidualShortcut)
{
    DagBuilder b;
    b.chain(node(1.0));
    b.parallel({{node(4.0)}, {}}, node(0.0, OpKind::Sum));
    Dag dag = b.build();
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    EXPECT_DOUBLE_EQ(dag.criticalPath(weight), 5.0);
    // head -> join edge exists: 3 nodes, not 4.
    EXPECT_EQ(dag.size(), 3u);
}

TEST(DagTest, CycleDetection)
{
    Dag dag;
    auto a = dag.addNode(node(1.0));
    auto b = dag.addNode(node(1.0));
    dag.addEdge(a, b);
    EXPECT_TRUE(dag.isAcyclic());
    dag.addEdge(b, a);
    EXPECT_FALSE(dag.isAcyclic());
    EXPECT_THROW(dag.topoOrder(), PanicError);
}

TEST(DagTest, SelfEdgeRejected)
{
    Dag dag;
    auto a = dag.addNode(node(1.0));
    EXPECT_THROW(dag.addEdge(a, a), PanicError);
}

TEST(DagTest, BadEdgeIdsRejected)
{
    Dag dag;
    auto a = dag.addNode(node(1.0));
    EXPECT_THROW(dag.addEdge(a, 99), PanicError);
    EXPECT_THROW(dag.addEdge(-1, a), PanicError);
}

TEST(DagTest, OpCountsAndDistinct)
{
    DagBuilder b;
    b.chain(node(1.0, OpKind::Conv2D));
    b.chain(node(1.0, OpKind::Conv2D));
    b.chain(node(1.0, OpKind::Relu));
    Dag dag = b.build();
    auto counts = dag.opCounts();
    EXPECT_EQ(counts[OpKind::Conv2D], 2);
    EXPECT_EQ(counts[OpKind::Relu], 1);
    EXPECT_EQ(dag.distinctOps(), 2);
}

TEST(DagTest, WorkByKindSumsPerKind)
{
    DagBuilder b;
    b.chain(node(1.0, OpKind::Conv2D));
    b.chain(node(2.5, OpKind::Conv2D));
    b.chain(node(0.5, OpKind::Relu));
    Dag dag = b.build();
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    auto work = dag.workByKind(weight);
    EXPECT_DOUBLE_EQ(work[OpKind::Conv2D], 3.5);
    EXPECT_DOUBLE_EQ(work[OpKind::Relu], 0.5);
}

TEST(DagTest, ScaleGflopsToTarget)
{
    DagBuilder b;
    b.chain(node(1.0));
    b.chain(node(3.0));
    Dag dag = b.build();
    dag.scaleGflopsTo(10.0);
    EXPECT_NEAR(dag.totalGflops(), 10.0, 1e-12);
    EXPECT_NEAR(dag.node(0).gflopsPerSample, 2.5, 1e-12);
}

TEST(DagTest, ScaleZeroGraphPanics)
{
    DagBuilder b;
    b.chain(node(0.0));
    Dag dag = b.build();
    EXPECT_THROW(dag.scaleGflopsTo(1.0), PanicError);
}

TEST(DagTest, EmptyDagProperties)
{
    Dag dag;
    auto weight = [](const OpNode &) { return 1.0; };
    EXPECT_DOUBLE_EQ(dag.criticalPath(weight), 0.0);
    EXPECT_DOUBLE_EQ(dag.totalWork(weight), 0.0);
    EXPECT_TRUE(dag.isAcyclic());
}

TEST(DagTest, DiamondGraphLongestPath)
{
    // a -> {b, c} -> d with direct edges, not via builder.
    Dag dag;
    auto a = dag.addNode(node(1.0));
    auto b = dag.addNode(node(10.0));
    auto c = dag.addNode(node(2.0));
    auto d = dag.addNode(node(1.0));
    dag.addEdge(a, b);
    dag.addEdge(a, c);
    dag.addEdge(b, d);
    dag.addEdge(c, d);
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    EXPECT_DOUBLE_EQ(dag.criticalPath(weight), 12.0);
}

} // namespace
