/**
 * @file
 * Tests for the execution-time surface — the behaviours every INFless
 * experiment relies on (see exec_model.hh).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/resources.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "sim/time.hh"

namespace {

using infless::cluster::Resources;
using infless::models::ExecModel;
using infless::models::ModelZoo;
using infless::models::OpKind;
using infless::models::OpNode;
using infless::sim::msToTicks;
using infless::sim::Tick;

const ExecModel &
model()
{
    static const ExecModel m;
    return m;
}

TEST(ExecModelTest, GpuBatchUtilRisesAndSaturates)
{
    const ExecModel &m = model();
    double prev = 0.0;
    for (int b : {1, 2, 4, 8, 16, 32, 64}) {
        double util = m.gpuBatchUtil(b);
        EXPECT_GT(util, prev);
        EXPECT_LE(util, 1.0);
        prev = util;
    }
    EXPECT_NEAR(m.gpuBatchUtil(1), m.params().gpuUtilBase, 1e-12);
    EXPECT_GT(m.gpuBatchUtil(64), 0.9);
}

TEST(ExecModelTest, MoreCpuIsFaster)
{
    OpNode op{OpKind::Conv2D, 1.0};
    const ExecModel &m = model();
    double t1 = m.opMicros(op, 1, Resources{1000, 0, 0});
    double t2 = m.opMicros(op, 1, Resources{2000, 0, 0});
    double t4 = m.opMicros(op, 1, Resources{4000, 0, 0});
    EXPECT_GT(t1, t2);
    EXPECT_GT(t2, t4);
}

TEST(ExecModelTest, CpuSpeedupIsSubLinearInCores)
{
    OpNode op{OpKind::Conv2D, 1.0};
    const ExecModel &m = model();
    double t1 = m.opMicros(op, 1, Resources{1000, 0, 0});
    double t16 = m.opMicros(op, 1, Resources{16'000, 0, 0});
    EXPECT_GT(t1 / t16, 4.0);  // real speedup
    EXPECT_LT(t1 / t16, 16.0); // but Amdahl-limited
}

TEST(ExecModelTest, GpuBeatsCpuForDenseMath)
{
    OpNode op{OpKind::Conv2D, 1.0};
    const ExecModel &m = model();
    double cpu = m.opMicros(op, 1, Resources{2000, 0, 0});
    double gpu = m.opMicros(op, 1, Resources{2000, 10, 0});
    EXPECT_GT(cpu, gpu);
}

TEST(ExecModelTest, CpuOnlyOpsIgnoreGpuShare)
{
    OpNode op{OpKind::Embedding, 0.1};
    const ExecModel &m = model();
    double without = m.opMicros(op, 1, Resources{2000, 0, 0});
    double with = m.opMicros(op, 1, Resources{2000, 50, 0});
    EXPECT_DOUBLE_EQ(without, with);
}

TEST(ExecModelTest, CpuBatchingIsRoughlyLinear)
{
    // Observation 2: batching on CPU multiplies latency.
    OpNode op{OpKind::Conv2D, 0.5};
    const ExecModel &m = model();
    double t1 = m.opMicros(op, 1, Resources{2000, 0, 0});
    double t4 = m.opMicros(op, 4, Resources{2000, 0, 0});
    EXPECT_GT(t4, 3.5 * t1);
    EXPECT_LT(t4, 4.5 * t1);
}

TEST(ExecModelTest, GpuBatchingIsStronglySubLinear)
{
    OpNode op{OpKind::Conv2D, 0.5};
    const ExecModel &m = model();
    double t1 = m.opMicros(op, 1, Resources{2000, 20, 0});
    double t8 = m.opMicros(op, 8, Resources{2000, 20, 0});
    // 8x the work in far less than 8x the time.
    EXPECT_LT(t8, 4.0 * t1);
}

TEST(ExecModelTest, GpuThroughputPerResourceImprovesWithBatch)
{
    // The economic fact behind built-in batching: requests/sec/SM% grows.
    OpNode op{OpKind::Conv2D, 0.5};
    const ExecModel &m = model();
    double rate1 = 1.0 / m.opMicros(op, 1, Resources{2000, 20, 0});
    double rate8 = 8.0 / m.opMicros(op, 8, Resources{2000, 20, 0});
    EXPECT_GT(rate8, 1.5 * rate1);
}

TEST(ExecModelTest, ResNet50MissesTightSloOnLambdaScaleCpu)
{
    // Observation 1: ResNet-50 on ~1.7 cores (Lambda max memory) exceeds
    // 200 ms per single inference.
    const auto &zoo = ModelZoo::shared();
    const auto &resnet = zoo.get("ResNet-50");
    Tick t = model().trueTicks(resnet, 1, Resources{1700, 0, 0});
    EXPECT_GT(t, msToTicks(200));
}

TEST(ExecModelTest, ResNet50Meets200msOnModestGpuSlice)
{
    const auto &zoo = ModelZoo::shared();
    const auto &resnet = zoo.get("ResNet-50");
    Tick t = model().trueTicks(resnet, 4, Resources{1000, 10, 0});
    EXPECT_LT(t, msToTicks(100)); // t_exec <= slo/2 for batching at 200ms
}

TEST(ExecModelTest, SmallModelsAreFastEverywhere)
{
    const auto &zoo = ModelZoo::shared();
    const auto &mnist = zoo.get("MNIST");
    Tick cpu = model().trueTicks(mnist, 1, Resources{500, 0, 0});
    EXPECT_LT(cpu, msToTicks(50));
}

TEST(ExecModelTest, DeviationIsDeterministicPerConfig)
{
    const auto &zoo = ModelZoo::shared();
    const auto &resnet = zoo.get("ResNet-50");
    Resources res{2000, 10, 0};
    double d1 = model().deviation(resnet, 4, res);
    double d2 = model().deviation(resnet, 4, res);
    EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(ExecModelTest, DeviationVariesAcrossConfigs)
{
    const auto &zoo = ModelZoo::shared();
    const auto &resnet = zoo.get("ResNet-50");
    double d1 = model().deviation(resnet, 4, Resources{2000, 10, 0});
    double d2 = model().deviation(resnet, 8, Resources{2000, 10, 0});
    EXPECT_NE(d1, d2);
}

TEST(ExecModelTest, DeviationBoundedByAmplifiedSpread)
{
    const auto &zoo = ModelZoo::shared();
    const ExecModel &m = model();
    for (const auto &info : zoo.all()) {
        for (int b : {1, 4, 16}) {
            double d = m.deviation(info, b, Resources{2000, 10, 0});
            EXPECT_GT(d, 0.5) << info.name;
            EXPECT_LT(d, 1.5) << info.name;
        }
    }
}

TEST(ExecModelTest, TrueTicksIsPositive)
{
    const auto &zoo = ModelZoo::shared();
    for (const auto &info : zoo.all()) {
        EXPECT_GT(model().trueTicks(info, 1, Resources{1000, 0, 0}), 0)
            << info.name;
    }
}

/** Parameterized sweep: monotonicity of latency in batchsize. */
class ExecBatchMonotonicity
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(ExecBatchMonotonicity, LatencyRisesWithBatch)
{
    auto [name, gpu] = GetParam();
    const auto &info = ModelZoo::shared().get(name);
    Resources res{2000, gpu, 0};
    Tick prev = 0;
    for (int b : {1, 2, 4, 8, 16, 32}) {
        double t = model().composedMicros(info.dag, b, res);
        EXPECT_GT(t, static_cast<double>(prev) * 0.999)
            << name << " b=" << b;
        prev = static_cast<Tick>(t);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ExecBatchMonotonicity,
    ::testing::Combine(::testing::Values("ResNet-50", "MobileNet",
                                         "LSTM-2365", "Bert-v1", "MNIST"),
                       ::testing::Values(0, 10, 30)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param);
        int gpu = std::get<1>(info.param);
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_gpu" + std::to_string(gpu);
    });

} // namespace
