/**
 * @file
 * LatencyCache correctness: cached lookups must be bit-identical to
 * direct ExecModel computation across the whole model zoo x batch ladder
 * x profile-grid configuration space, for both the ground-truth surface
 * (trueTicks) and the COP composition (composedMicros).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cluster/resources.hh"
#include "models/exec_model.hh"
#include "models/latency_cache.hh"
#include "models/model_zoo.hh"
#include "profiler/op_profile_db.hh"

namespace {

using infless::cluster::Resources;
using infless::models::ExecModel;
using infless::models::LatencyCache;
using infless::models::ModelZoo;
using infless::profiler::ProfileGrid;

TEST(LatencyCacheTest, TrueTicksBitIdenticalAcrossFullGrid)
{
    ExecModel exec;
    LatencyCache cache;
    const auto &zoo = ModelZoo::shared();
    ProfileGrid grid;

    std::size_t checked = 0;
    for (const auto &model : zoo.all()) {
        for (std::int64_t cpu : grid.cpuMillicores) {
            for (std::int64_t gpu : grid.gpuSmPercent) {
                Resources res{cpu, gpu, 0};
                for (int batch : grid.batchSizes) {
                    if (batch > model.maxBatch)
                        break;
                    auto direct = exec.trueTicks(model, batch, res);
                    ASSERT_EQ(cache.trueTicks(exec, model, batch, res),
                              direct)
                        << model.name << " cpu=" << cpu << " gpu=" << gpu
                        << " b=" << batch << " (miss)";
                    ASSERT_EQ(cache.trueTicks(exec, model, batch, res),
                              direct)
                        << model.name << " cpu=" << cpu << " gpu=" << gpu
                        << " b=" << batch << " (hit)";
                    ++checked;
                }
            }
        }
    }
    EXPECT_GT(checked, 1000u);
    // Second lookup of every point must have been a hit.
    EXPECT_EQ(cache.stats().hits, checked);
    EXPECT_EQ(cache.stats().misses, checked);
    EXPECT_EQ(cache.size(), checked);
}

TEST(LatencyCacheTest, ComposedMicrosBitIdenticalAcrossFullGrid)
{
    ExecModel exec;
    LatencyCache cache;
    const auto &zoo = ModelZoo::shared();
    ProfileGrid grid;

    for (const auto &model : zoo.all()) {
        for (std::int64_t cpu : grid.cpuMillicores) {
            for (std::int64_t gpu : grid.gpuSmPercent) {
                Resources res{cpu, gpu, 0};
                for (int batch : grid.batchSizes) {
                    if (batch > model.maxBatch)
                        break;
                    double direct =
                        exec.composedMicros(model.dag, batch, res);
                    ASSERT_EQ(
                        cache.composedMicros(exec, model, batch, res),
                        direct)
                        << model.name << " cpu=" << cpu << " gpu=" << gpu
                        << " b=" << batch;
                }
            }
        }
    }
    EXPECT_GT(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().hits, 0u) << "every grid point is distinct";
}

TEST(LatencyCacheTest, MemoryDoesNotEnterTheKey)
{
    // The latency surface is pure in (model, cpu, gpu, batch): the same
    // config at a different memory size must hit the same cache line.
    ExecModel exec;
    LatencyCache cache;
    const auto &model = ModelZoo::shared().get("ResNet-50");
    Resources small{2000, 10, 512};
    Resources large{2000, 10, 8192};
    ASSERT_EQ(exec.trueTicks(model, 4, small),
              exec.trueTicks(model, 4, large));
    auto first = cache.trueTicks(exec, model, 4, small);
    EXPECT_EQ(cache.trueTicks(exec, model, 4, large), first);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LatencyCacheTest, DistinctModelsNeverAlias)
{
    // The open-addressing table compares full keys; two models sharing a
    // config must get independent values (no hash-collision aliasing).
    ExecModel exec;
    LatencyCache cache;
    const auto &zoo = ModelZoo::shared();
    Resources res{4000, 25, 0};
    for (const auto &model : zoo.all()) {
        EXPECT_EQ(cache.trueTicks(exec, model, 1, res),
                  exec.trueTicks(model, 1, res))
            << model.name;
    }
    EXPECT_EQ(cache.configCount(), zoo.all().size());
}

TEST(LatencyCacheTest, GrowsPastInitialCapacityWithoutLosingValues)
{
    // 12 cpu x 11 gpu configs per model pushes the line table well past
    // its initial 64 slots and through several rehashes.
    ExecModel exec;
    LatencyCache cache;
    const auto &model = ModelZoo::shared().get("MobileNet");
    ProfileGrid grid;
    for (std::int64_t cpu : grid.cpuMillicores) {
        for (std::int64_t gpu : grid.gpuSmPercent) {
            Resources res{cpu, gpu, 0};
            cache.trueTicks(exec, model, 1, res);
        }
    }
    std::size_t configs =
        grid.cpuMillicores.size() * grid.gpuSmPercent.size();
    EXPECT_EQ(cache.configCount(), configs);
    // Every cached value survives the rehashes.
    for (std::int64_t cpu : grid.cpuMillicores) {
        for (std::int64_t gpu : grid.gpuSmPercent) {
            Resources res{cpu, gpu, 0};
            ASSERT_EQ(cache.trueTicks(exec, model, 1, res),
                      exec.trueTicks(model, 1, res));
        }
    }
    EXPECT_EQ(cache.stats().hits, configs);
}

} // namespace
