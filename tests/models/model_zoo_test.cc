/**
 * @file
 * Tests for the Table 1 model zoo: sizes, GFLOPs, and the operator-mix
 * facts of Fig. 7.
 */

#include <gtest/gtest.h>

#include <string>

#include "models/model_zoo.hh"
#include "models/operator.hh"
#include "sim/logging.hh"

namespace {

using infless::models::Dag;
using infless::models::ModelZoo;
using infless::models::OpKind;
using infless::models::OpNode;
using infless::sim::FatalError;

TEST(ModelZooTest, ContainsAllElevenModels)
{
    const auto &zoo = ModelZoo::shared();
    EXPECT_EQ(zoo.all().size(), 11u);
    for (const char *name :
         {"Bert-v1", "ResNet-50", "VGGNet", "LSTM-2365", "ResNet-20", "SSD",
          "DSSM-2365", "DeepSpeech", "MobileNet", "TextCNN-69", "MNIST"}) {
        EXPECT_TRUE(zoo.has(name)) << name;
    }
}

TEST(ModelZooTest, Dssm2389AliasResolves)
{
    const auto &zoo = ModelZoo::shared();
    EXPECT_TRUE(zoo.has("DSSM-2389"));
    EXPECT_EQ(zoo.get("DSSM-2389").name, "DSSM-2365");
}

TEST(ModelZooTest, UnknownModelIsFatal)
{
    EXPECT_THROW(ModelZoo::shared().get("AlexNet"), FatalError);
    EXPECT_FALSE(ModelZoo::shared().has("AlexNet"));
}

TEST(ModelZooTest, Table1SizesAndGflops)
{
    const auto &zoo = ModelZoo::shared();
    EXPECT_DOUBLE_EQ(zoo.get("Bert-v1").sizeMb, 391);
    EXPECT_DOUBLE_EQ(zoo.get("Bert-v1").gflops, 22.2);
    EXPECT_DOUBLE_EQ(zoo.get("ResNet-50").sizeMb, 98);
    EXPECT_DOUBLE_EQ(zoo.get("ResNet-50").gflops, 3.89);
    EXPECT_DOUBLE_EQ(zoo.get("MNIST").gflops, 0.01);
}

TEST(ModelZooTest, DagGflopsMatchTable1)
{
    for (const auto &info : ModelZoo::shared().all())
        EXPECT_NEAR(info.dag.totalGflops(), info.gflops, 1e-9) << info.name;
}

TEST(ModelZooTest, AllDagsAreAcyclic)
{
    for (const auto &info : ModelZoo::shared().all())
        EXPECT_TRUE(info.dag.isAcyclic()) << info.name;
}

TEST(ModelZooTest, ResNet50IsConvDominated)
{
    // Fig. 7b: >95% of ResNet-50 execution is Conv2D.
    const auto &info = ModelZoo::shared().get("ResNet-50");
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    auto work = info.dag.workByKind(weight);
    EXPECT_GT(work[OpKind::Conv2D] / info.gflops, 0.95);
}

TEST(ModelZooTest, ResNet50HasEightDistinctOperators)
{
    EXPECT_EQ(ModelZoo::shared().get("ResNet-50").dag.distinctOps(), 8);
}

TEST(ModelZooTest, Lstm2365Calls81MatMuls)
{
    // Fig. 7a: MatMul is called 81 times in LSTM-2365.
    const auto &info = ModelZoo::shared().get("LSTM-2365");
    auto counts = info.dag.opCounts();
    EXPECT_EQ(counts[OpKind::MatMul], 81);
}

TEST(ModelZooTest, Lstm2365IsMatMulDominatedButNotTotally)
{
    // Fig. 7a: (Fused)MatMul takes ~76% of execution time.
    const auto &info = ModelZoo::shared().get("LSTM-2365");
    auto weight = [](const OpNode &n) { return n.gflopsPerSample; };
    auto work = info.dag.workByKind(weight);
    double share =
        (work[OpKind::MatMul] + work[OpKind::FusedMatMul]) / info.gflops;
    EXPECT_GT(share, 0.65);
    EXPECT_LT(share, 0.90);
}

TEST(ModelZooTest, LstmHasHighestBranchOverlap)
{
    // Fig. 8's rationale: LSTM-2365 has the most overlapping execution
    // paths, so its composition error is largest.
    const auto &zoo = ModelZoo::shared();
    double lstm = zoo.get("LSTM-2365").dag.branchOverlap();
    for (const auto &info : zoo.all()) {
        if (info.name == "LSTM-2365")
            continue;
        EXPECT_GE(lstm, info.dag.branchOverlap()) << info.name;
    }
}

TEST(ModelZooTest, ChainModelsHaveZeroOverlap)
{
    EXPECT_DOUBLE_EQ(ModelZoo::shared().get("VGGNet").dag.branchOverlap(),
                     0.0);
    EXPECT_DOUBLE_EQ(
        ModelZoo::shared().get("MobileNet").dag.branchOverlap(), 0.0);
    EXPECT_DOUBLE_EQ(ModelZoo::shared().get("MNIST").dag.branchOverlap(),
                     0.0);
}

TEST(ModelZooTest, BatchSizesDescendingFromMax)
{
    const auto &info = ModelZoo::shared().get("ResNet-50");
    auto sizes = info.batchSizesDescending();
    ASSERT_EQ(sizes.size(), 6u);
    EXPECT_EQ(sizes.front(), 32);
    EXPECT_EQ(sizes.back(), 1);
}

TEST(ModelZooTest, NoiseKeysAreDistinct)
{
    const auto &zoo = ModelZoo::shared();
    for (std::size_t i = 0; i < zoo.all().size(); ++i) {
        for (std::size_t j = i + 1; j < zoo.all().size(); ++j) {
            EXPECT_NE(zoo.all()[i].noiseKey, zoo.all()[j].noiseKey)
                << zoo.all()[i].name << " vs " << zoo.all()[j].name;
        }
    }
}

TEST(ModelZooTest, ApplicationBundles)
{
    // §5.1: OSVT uses SSD + MobileNet + ResNet-50; the Q&A robot uses
    // TextCNN-69 + LSTM-2365 + DSSM.
    auto osvt = ModelZoo::osvtModels();
    EXPECT_EQ(osvt.size(), 3u);
    auto qa = ModelZoo::qaRobotModels();
    EXPECT_EQ(qa.size(), 3u);
    for (const auto &name : osvt)
        EXPECT_TRUE(ModelZoo::shared().has(name)) << name;
    for (const auto &name : qa)
        EXPECT_TRUE(ModelZoo::shared().has(name)) << name;
}

TEST(ModelZooTest, ModelsSortedLargestFirst)
{
    const auto &zoo = ModelZoo::shared();
    for (std::size_t i = 1; i < zoo.all().size(); ++i)
        EXPECT_GE(zoo.all()[i - 1].sizeMb, zoo.all()[i].sizeMb);
}

} // namespace
