/**
 * @file
 * Unit tests for the operator taxonomy.
 */

#include <gtest/gtest.h>

#include <string>

#include "models/operator.hh"
#include "sim/logging.hh"

namespace {

using infless::models::kNumOpKinds;
using infless::models::OpKind;
using infless::models::opKindFromName;
using infless::models::opName;
using infless::models::opTraits;
using infless::sim::PanicError;

TEST(OperatorTest, EveryKindHasConsistentTraits)
{
    for (int i = 0; i < kNumOpKinds; ++i) {
        auto kind = static_cast<OpKind>(i);
        const auto &t = opTraits(kind);
        EXPECT_NE(t.name, nullptr);
        EXPECT_GE(t.cpuParallelFraction, 0.0);
        EXPECT_LE(t.cpuParallelFraction, 1.0);
        EXPECT_GE(t.gpuEfficiency, 0.0);
        EXPECT_LE(t.gpuEfficiency, 1.0);
        EXPECT_GE(t.cpuOverhead, 0);
        EXPECT_GE(t.gpuOverhead, 0);
    }
}

TEST(OperatorTest, NamesRoundTrip)
{
    for (int i = 0; i < kNumOpKinds; ++i) {
        auto kind = static_cast<OpKind>(i);
        EXPECT_EQ(opKindFromName(opName(kind)), kind);
    }
}

TEST(OperatorTest, UnknownNamePanics)
{
    EXPECT_THROW(opKindFromName("NotAnOp"), PanicError);
}

TEST(OperatorTest, DenseMathIsGpuFriendly)
{
    // The dominant operators of Fig. 7 map efficiently to GPUs...
    EXPECT_GT(opTraits(OpKind::Conv2D).gpuEfficiency, 0.8);
    EXPECT_GT(opTraits(OpKind::MatMul).gpuEfficiency, 0.8);
    // ...while glue operators do not, and embeddings stay on CPU.
    EXPECT_LT(opTraits(OpKind::ConcatV2).gpuEfficiency, 0.5);
    EXPECT_EQ(opTraits(OpKind::Embedding).gpuEfficiency, 0.0);
}

TEST(OperatorTest, DenseMathParallelizesOnCpu)
{
    EXPECT_GT(opTraits(OpKind::Conv2D).cpuParallelFraction, 0.9);
    EXPECT_LT(opTraits(OpKind::Reshape).cpuParallelFraction, 0.5);
}

TEST(OperatorTest, NamesMatchTensorFlowConvention)
{
    EXPECT_STREQ(opName(OpKind::MatMul), "MatMul");
    EXPECT_STREQ(opName(OpKind::FusedMatMul), "FusedMatMul");
    EXPECT_STREQ(opName(OpKind::Conv2D), "Conv2D");
    EXPECT_STREQ(opName(OpKind::ConcatV2), "ConcatV2");
}

} // namespace
