/**
 * @file
 * Unit tests for the flight recorder: always-on bounded ring, freeze-on-
 * first-trigger semantics, and the Perfetto-loadable dump format.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "mini_json.hh"
#include "obs/trace_recorder.hh"

namespace {

using infless::obs::FlightConfig;
using infless::obs::FlightRecorder;
using infless::obs::FlightTrigger;
using infless::obs::SpanKind;
using infless::sim::Tick;

FlightRecorder
makeRecorder(std::size_t capacity = 8)
{
    FlightConfig cfg;
    cfg.enabled = true;
    cfg.capacity = capacity;
    FlightRecorder recorder;
    recorder.configure(cfg);
    return recorder;
}

void
recordExec(FlightRecorder &recorder, std::int64_t request, Tick start)
{
    recorder.record(SpanKind::Exec, request, /*function=*/0, /*server=*/1,
                    /*instance=*/request, start, /*duration=*/10);
}

TEST(FlightRecorderTest, DisabledByDefaultAndIgnoresTriggers)
{
    FlightRecorder recorder;
    recorder.configure(FlightConfig{});
    EXPECT_FALSE(recorder.enabled());
    recorder.trigger(FlightTrigger::Manual, 100);
    EXPECT_FALSE(recorder.triggered());
    EXPECT_EQ(recorder.triggerCount(), 0u);
    EXPECT_TRUE(recorder.dump().empty());
    EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(FlightRecorderTest, NoneTriggerIsANoOp)
{
    FlightRecorder recorder = makeRecorder();
    recorder.trigger(FlightTrigger::None, 100);
    EXPECT_FALSE(recorder.triggered());
    EXPECT_EQ(recorder.triggerCount(), 0u);
}

TEST(FlightRecorderTest, RecordsEverySpanWithoutSampling)
{
    FlightRecorder recorder = makeRecorder();
    for (std::int64_t r = 0; r < 5; ++r)
        recordExec(recorder, r, 100 * r);
    EXPECT_EQ(recorder.recorded(), 5u);
    EXPECT_FALSE(recorder.triggered());
    EXPECT_TRUE(recorder.dump().empty());
}

TEST(FlightRecorderTest, FirstTriggerFreezesTheDump)
{
    FlightRecorder recorder = makeRecorder();
    recordExec(recorder, 0, 100);
    recordExec(recorder, 1, 200);
    recorder.trigger(FlightTrigger::Manual, 250);

    ASSERT_TRUE(recorder.triggered());
    EXPECT_EQ(recorder.triggerCause(), FlightTrigger::Manual);
    EXPECT_EQ(recorder.triggerAt(), 250);
    // Dump = the two spans + the FlightDump marker at the incident,
    // encoding the cause in the request field.
    ASSERT_EQ(recorder.dump().size(), 3u);
    EXPECT_EQ(recorder.dump().back().kind, SpanKind::FlightDump);
    EXPECT_EQ(recorder.dump().back().start, 250);
    EXPECT_EQ(recorder.dump().back().request,
              static_cast<std::int64_t>(FlightTrigger::Manual));

    // Later spans and triggers never change the frozen dump: it always
    // shows the FIRST incident.
    recordExec(recorder, 2, 300);
    recorder.trigger(FlightTrigger::ServerCrash, 400);
    EXPECT_EQ(recorder.dump().size(), 3u);
    EXPECT_EQ(recorder.triggerCause(), FlightTrigger::Manual);
    EXPECT_EQ(recorder.triggerAt(), 250);
    EXPECT_EQ(recorder.triggerCount(), 2u);
    EXPECT_EQ(recorder.recorded(), 3u);
}

TEST(FlightRecorderTest, RingBoundsTheEvidence)
{
    FlightRecorder recorder = makeRecorder(/*capacity=*/4);
    for (std::int64_t r = 0; r < 10; ++r)
        recordExec(recorder, r, 100 * r);
    recorder.trigger(FlightTrigger::SloFastBurn, 1000);
    // Last 4 spans (requests 6..9) + marker, oldest first.
    ASSERT_EQ(recorder.dump().size(), 5u);
    EXPECT_EQ(recorder.dump().front().request, 6);
    EXPECT_EQ(recorder.dump()[3].request, 9);
    EXPECT_EQ(recorder.recorded(), 10u);
}

TEST(FlightRecorderTest, ClusterEventsLandInTheRing)
{
    FlightRecorder recorder = makeRecorder();
    recorder.clusterEvent(SpanKind::ServerCrash, /*server=*/3, 500);
    recorder.trigger(FlightTrigger::ServerCrash, 500);
    ASSERT_EQ(recorder.dump().size(), 2u);
    EXPECT_EQ(recorder.dump()[0].kind, SpanKind::ServerCrash);
    EXPECT_EQ(recorder.dump()[0].server, 3);
}

TEST(FlightRecorderTest, DumpWritesValidChromeTraceWithMarker)
{
    FlightRecorder recorder = makeRecorder();
    recordExec(recorder, 0, 100);
    recorder.clusterEvent(SpanKind::ServerCrash, 1, 150);
    recorder.trigger(FlightTrigger::ServerCrash, 150);

    std::ostringstream os;
    recorder.writeChromeTrace(os);
    std::string json = os.str();
    EXPECT_TRUE(infless::testing::jsonValid(json)) << json;
    EXPECT_NE(json.find("\"flight_dump\""), std::string::npos);
    EXPECT_NE(json.find("\"server_crash\""), std::string::npos);
    // The marker carries the trigger cause for the Perfetto args pane.
    std::ostringstream want;
    want << "\"trigger\": "
         << static_cast<int>(FlightTrigger::ServerCrash);
    EXPECT_NE(json.find(want.str()), std::string::npos) << json;
}

TEST(FlightRecorderTest, UntriggeredWriteEmitsTheLiveRing)
{
    FlightRecorder recorder = makeRecorder();
    recordExec(recorder, 0, 100);
    std::ostringstream os;
    recorder.writeChromeTrace(os);
    std::string json = os.str();
    EXPECT_TRUE(infless::testing::jsonValid(json)) << json;
    EXPECT_EQ(json.find("flight_dump"), std::string::npos);
    EXPECT_NE(json.find("\"exec\""), std::string::npos);
}

TEST(FlightRecorderTest, ReconfigureResetsTriggerState)
{
    FlightRecorder recorder = makeRecorder();
    recordExec(recorder, 0, 100);
    recorder.trigger(FlightTrigger::Manual, 200);
    ASSERT_TRUE(recorder.triggered());

    FlightConfig cfg;
    cfg.enabled = true;
    recorder.configure(cfg);
    EXPECT_FALSE(recorder.triggered());
    EXPECT_EQ(recorder.triggerCause(), FlightTrigger::None);
    EXPECT_EQ(recorder.triggerCount(), 0u);
    EXPECT_TRUE(recorder.dump().empty());
    EXPECT_EQ(recorder.recorded(), 0u);
}

} // namespace
