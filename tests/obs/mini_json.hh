/**
 * @file
 * Minimal recursive-descent JSON validator for structural tests.
 *
 * Not a parser producing a DOM — it walks the text once and reports
 * whether it is a single well-formed JSON value. Keeps the trace/
 * telemetry structural tests dependency-free.
 */

#ifndef INFLESS_TESTS_OBS_MINI_JSON_HH
#define INFLESS_TESTS_OBS_MINI_JSON_HH

#include <cctype>
#include <cstddef>
#include <string>

namespace infless::testing {

class MiniJsonValidator
{
  public:
    explicit MiniJsonValidator(const std::string &text) : text_(text) {}

    /** True iff the text is exactly one well-formed JSON value. */
    bool
    valid()
    {
        pos_ = 0;
        ok_ = true;
        skipWs();
        value();
        skipWs();
        return ok_ && pos_ == text_.size();
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    void
    expect(char c)
    {
        if (peek() == c)
            ++pos_;
        else
            ok_ = false;
    }

    void
    value()
    {
        if (!ok_)
            return;
        switch (peek()) {
          case '{':
            object();
            break;
          case '[':
            array();
            break;
          case '"':
            string();
            break;
          case 't':
            literal("true");
            break;
          case 'f':
            literal("false");
            break;
          case 'n':
            literal("null");
            break;
          default:
            number();
            break;
        }
    }

    void
    object()
    {
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (ok_) {
            skipWs();
            string();
            skipWs();
            expect(':');
            skipWs();
            value();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    void
    array()
    {
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        while (ok_) {
            skipWs();
            value();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return;
        }
    }

    void
    string()
    {
        expect('"');
        while (ok_ && pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    ok_ = false;
                    return;
                }
            }
            ++pos_;
        }
        expect('"');
    }

    void
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (pos_ == start)
            ok_ = false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p)
            expect(*p);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Convenience: validate a JSON string in one call. */
inline bool
jsonValid(const std::string &text)
{
    return MiniJsonValidator(text).valid();
}

} // namespace infless::testing

#endif // INFLESS_TESTS_OBS_MINI_JSON_HH
