/** OverheadProfiler / ProfScope behavior. */

#include "obs/prof_scope.hh"

#include <gtest/gtest.h>

namespace {

using namespace infless;
using obs::OverheadProfiler;
using obs::Phase;
using obs::PhaseStats;
using obs::ProfScope;

TEST(OverheadProfiler, DisabledByDefaultAndScopesRecordNothing)
{
    OverheadProfiler prof;
    EXPECT_FALSE(prof.enabled());
    {
        ProfScope scope(&prof, Phase::Schedule);
    }
    EXPECT_EQ(prof.stats(Phase::Schedule).count, 0u);
}

TEST(OverheadProfiler, NullProfilerIsSafe)
{
    ProfScope scope(nullptr, Phase::Autoscaler);
    // Destructor must be a no-op; nothing to assert beyond not crashing.
}

TEST(OverheadProfiler, EnabledScopeRecordsOneSamplePerScope)
{
    OverheadProfiler prof;
    prof.setEnabled(true);
    for (int i = 0; i < 5; ++i) {
        ProfScope scope(&prof, Phase::CopSolve);
    }
    PhaseStats stats = prof.stats(Phase::CopSolve);
    EXPECT_EQ(stats.count, 5u);
    EXPECT_GE(stats.meanUs, 0.0);
    EXPECT_GE(stats.maxUs, stats.minUs);
    // Other phases stay empty.
    EXPECT_EQ(prof.stats(Phase::Schedule).count, 0u);
    EXPECT_EQ(prof.stats(Phase::Autoscaler).count, 0u);
}

TEST(OverheadProfiler, RecordAccumulatesConsistentSummary)
{
    OverheadProfiler prof;
    prof.setEnabled(true);
    // 1us, 10us, 100us in nanoseconds.
    prof.record(Phase::ColdStartPolicy, 1'000);
    prof.record(Phase::ColdStartPolicy, 10'000);
    prof.record(Phase::ColdStartPolicy, 100'000);

    PhaseStats stats = prof.stats(Phase::ColdStartPolicy);
    EXPECT_EQ(stats.count, 3u);
    EXPECT_NEAR(stats.totalUs, 111.0, 0.01);
    EXPECT_NEAR(stats.meanUs, 37.0, 0.01);
    // Log-bucketed quantiles: generous relative tolerance.
    EXPECT_NEAR(stats.p50Us, 10.0, 1.5);
    EXPECT_GE(stats.p99Us, stats.p50Us);
    EXPECT_LE(stats.minUs, stats.p50Us);
    EXPECT_GE(stats.maxUs, stats.p99Us);
}

TEST(OverheadProfiler, NegativeDurationsClampToZero)
{
    OverheadProfiler prof;
    prof.setEnabled(true);
    prof.record(Phase::Schedule, -50);
    PhaseStats stats = prof.stats(Phase::Schedule);
    EXPECT_EQ(stats.count, 1u);
    EXPECT_EQ(stats.minUs, 0.0);
}

TEST(OverheadProfiler, PhaseNamesAreStableExportKeys)
{
    EXPECT_STREQ(obs::phaseName(Phase::Schedule), "scheduler");
    EXPECT_STREQ(obs::phaseName(Phase::CopSolve), "cop");
    EXPECT_STREQ(obs::phaseName(Phase::Autoscaler), "autoscaler");
    EXPECT_STREQ(obs::phaseName(Phase::ColdStartPolicy),
                 "coldstart_policy");
}

} // namespace
