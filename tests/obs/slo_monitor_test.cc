/**
 * @file
 * Unit tests for the SLO health engine: window anchoring, burn-rate
 * math, the multi-window alert rules with hysteresis, attribution
 * accounting, the histogram evidence ring, and the cross-cell merge.
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/slo_monitor.hh"

namespace {

using infless::obs::AlertEdge;
using infless::obs::AlertKind;
using infless::obs::SloAlert;
using infless::obs::SloHealthMerge;
using infless::obs::SloMonitor;
using infless::obs::SloMonitorConfig;
using infless::obs::WindowRow;
using infless::sim::kTicksPerMs;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

constexpr std::int32_t kFn = 0;
constexpr Tick kSlo = 100 * kTicksPerMs;
constexpr Tick kWindow = kTicksPerSec;

/** Tight test configuration: 1s windows, 10% budget, fast = burn 5 over
 *  2 windows, slow = burn 2 over 4 windows, 10-sample floor. */
SloMonitorConfig
testConfig()
{
    SloMonitorConfig cfg;
    cfg.enabled = true;
    cfg.windowTicks = kWindow;
    cfg.ringWindows = 4;
    cfg.errorBudget = 0.1;
    cfg.fast = {5.0, 2};
    cfg.slow = {2.0, 4};
    cfg.clearWindows = 2;
    cfg.minSamples = 10;
    return cfg;
}

SloMonitor
makeMonitor(SloMonitorConfig cfg = testConfig())
{
    SloMonitor monitor;
    monitor.configure(cfg);
    monitor.registerFunction(kFn, kSlo);
    return monitor;
}

/** testConfig with the slow rule out of reach, for tests exercising the
 *  fast rule's edges in isolation. */
SloMonitorConfig
fastOnlyConfig()
{
    SloMonitorConfig cfg = testConfig();
    cfg.slow.threshold = 1e9;
    return cfg;
}

/** Fill window @p window with @p good in-SLO and @p bad violating
 *  completions (fixed attribution split: 10/20/5 ms + exec). */
void
feedWindow(SloMonitor &monitor, std::int32_t fn, int window, int good,
           int bad, int drops = 0)
{
    Tick at = Tick(window) * kWindow + kWindow / 2;
    Tick cold = 10 * kTicksPerMs, queue = 20 * kTicksPerMs,
         batch = 5 * kTicksPerMs;
    for (int i = 0; i < good; ++i) {
        Tick total = 50 * kTicksPerMs;
        monitor.recordCompletion(fn, at, total, cold, queue, batch,
                                 total - cold - queue - batch);
    }
    for (int i = 0; i < bad; ++i) {
        Tick total = 200 * kTicksPerMs;
        monitor.recordCompletion(fn, at, total, cold, queue, batch,
                                 total - cold - queue - batch);
    }
    for (int i = 0; i < drops; ++i)
        monitor.recordDrop(fn, at);
}

TEST(SloMonitorTest, DisabledMonitorRecordsNothing)
{
    SloMonitor monitor; // default config: disabled
    monitor.registerFunction(kFn, kSlo);
    monitor.recordCompletion(kFn, 10, 200 * kTicksPerMs, 0, 0, 0, 0);
    monitor.recordDrop(kFn, 20);
    monitor.advanceTo(10 * kWindow);
    EXPECT_FALSE(monitor.enabled());
    EXPECT_TRUE(monitor.functions().empty());
    EXPECT_TRUE(monitor.closed(kFn).empty());
    EXPECT_TRUE(monitor.alerts().empty());
}

TEST(SloMonitorTest, WindowsAnchorAtTickZero)
{
    // Windows align to the sim-clock origin, not first traffic: after
    // advanceTo(now) exactly floor(now / W) windows are closed — the
    // invariant the sharded merge cursor depends on.
    SloMonitor monitor = makeMonitor();
    monitor.advanceTo(3 * kWindow + kWindow / 2);
    ASSERT_EQ(monitor.closed(kFn).size(), 3u);
    for (std::size_t w = 0; w < 3; ++w) {
        EXPECT_EQ(monitor.closed(kFn)[w].start, Tick(w) * kWindow);
        EXPECT_EQ(monitor.closed(kFn)[w].finished(), 0);
    }

    feedWindow(monitor, kFn, 3, 2, 0);
    monitor.advanceTo(5 * kWindow);
    ASSERT_EQ(monitor.closed(kFn).size(), 5u);
    EXPECT_EQ(monitor.closed(kFn)[3].completions, 2);
    EXPECT_EQ(monitor.closed(kFn)[4].completions, 0);
}

TEST(SloMonitorTest, BurnRateIsViolationFractionOverBudget)
{
    SloMonitor monitor = makeMonitor();
    feedWindow(monitor, kFn, 0, 8, 2);
    monitor.advanceTo(kWindow);
    const WindowRow &row = monitor.closed(kFn)[0];
    EXPECT_EQ(row.completions, 10);
    EXPECT_EQ(row.violations, 2);
    // (2 bad / 10 finished) / 0.1 budget = 2x burn.
    EXPECT_DOUBLE_EQ(row.burn, 2.0);
}

TEST(SloMonitorTest, LatencyExactlyAtSloIsNotAViolation)
{
    SloMonitor monitor = makeMonitor();
    monitor.recordCompletion(kFn, kWindow / 2, kSlo, 0, 0, 0, kSlo);
    monitor.recordCompletion(kFn, kWindow / 2, kSlo + 1, 0, 0, 0, kSlo + 1);
    monitor.advanceTo(kWindow);
    EXPECT_EQ(monitor.closed(kFn)[0].violations, 1);
}

TEST(SloMonitorTest, DropsBurnBudgetLikeViolations)
{
    SloMonitor monitor = makeMonitor();
    feedWindow(monitor, kFn, 0, 0, 0, 10);
    monitor.advanceTo(kWindow);
    const WindowRow &row = monitor.closed(kFn)[0];
    EXPECT_EQ(row.drops, 10);
    EXPECT_EQ(row.finished(), 10);
    EXPECT_DOUBLE_EQ(row.burn, 10.0);
}

TEST(SloMonitorTest, AttributionSumsAccumulatePerWindow)
{
    SloMonitor monitor = makeMonitor();
    feedWindow(monitor, kFn, 0, 3, 0);
    monitor.advanceTo(kWindow);
    const WindowRow &row = monitor.closed(kFn)[0];
    EXPECT_DOUBLE_EQ(row.coldSum, 3.0 * 10 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(row.queueSum, 3.0 * 20 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(row.batchSum, 3.0 * 5 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(row.execSum, 3.0 * 15 * kTicksPerMs);
}

TEST(SloMonitorTest, FastBurnFiresOnceItsSpanHasClosed)
{
    SloMonitor monitor = makeMonitor();
    // Window 0 alone burns at 5x but the fast rule spans 2 windows: no
    // alert until window 1 closes.
    feedWindow(monitor, kFn, 0, 5, 5);
    monitor.advanceTo(kWindow);
    EXPECT_TRUE(monitor.alerts().empty());

    feedWindow(monitor, kFn, 1, 5, 5);
    monitor.advanceTo(2 * kWindow);
    ASSERT_EQ(monitor.alerts().size(), 1u);
    const SloAlert &alert = monitor.alerts()[0];
    EXPECT_EQ(alert.function, kFn);
    EXPECT_EQ(alert.kind, AlertKind::FastBurn);
    EXPECT_EQ(alert.edge, AlertEdge::Firing);
    EXPECT_EQ(alert.at, 2 * kWindow);
    EXPECT_DOUBLE_EQ(alert.burnRate, 5.0);
    // Attribution means ride along as the "why": per-completion averages
    // over the rule's span.
    EXPECT_DOUBLE_EQ(alert.meanCold, 10.0 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(alert.meanQueue, 20.0 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(alert.meanBatch, 5.0 * kTicksPerMs);
    EXPECT_TRUE(monitor.firing(kFn, AlertKind::FastBurn));
    EXPECT_FALSE(monitor.firing(kFn, AlertKind::SlowBurn));
    EXPECT_EQ(monitor.alertsFired(), 1);
}

TEST(SloMonitorTest, MinSamplesGatesFiring)
{
    SloMonitor monitor = makeMonitor();
    // 100% violations, but only 4 finished requests per fast span: an
    // idle-ish function never pages off a handful of requests.
    for (int w = 0; w < 6; ++w)
        feedWindow(monitor, kFn, w, 0, 2);
    monitor.advanceTo(6 * kWindow);
    EXPECT_EQ(monitor.alertsFired(), 0);
    EXPECT_TRUE(monitor.alerts().empty());
    // The burn rate itself is still tracked (10x) — only paging is gated.
    EXPECT_DOUBLE_EQ(monitor.burnRate(kFn, AlertKind::FastBurn), 10.0);
}

TEST(SloMonitorTest, AlertClearsAfterConsecutiveQuietWindows)
{
    SloMonitor monitor = makeMonitor(fastOnlyConfig());
    feedWindow(monitor, kFn, 0, 5, 5);
    feedWindow(monitor, kFn, 1, 5, 5);
    // One quiet window halves the pooled burn (2.5 < 5) but hysteresis
    // needs two in a row.
    feedWindow(monitor, kFn, 2, 10, 0);
    monitor.advanceTo(3 * kWindow);
    ASSERT_EQ(monitor.alerts().size(), 1u);
    EXPECT_TRUE(monitor.firing(kFn, AlertKind::FastBurn));

    feedWindow(monitor, kFn, 3, 10, 0);
    monitor.advanceTo(4 * kWindow);
    ASSERT_EQ(monitor.alerts().size(), 2u);
    EXPECT_EQ(monitor.alerts()[1].edge, AlertEdge::Cleared);
    EXPECT_EQ(monitor.alerts()[1].at, 4 * kWindow);
    EXPECT_FALSE(monitor.firing(kFn, AlertKind::FastBurn));
    // Cleared edges do not count as fired alerts.
    EXPECT_EQ(monitor.alertsFired(), 1);
}

TEST(SloMonitorTest, HotWindowResetsTheClearStreak)
{
    SloMonitor monitor = makeMonitor(fastOnlyConfig());
    feedWindow(monitor, kFn, 0, 5, 5);
    feedWindow(monitor, kFn, 1, 5, 5); // fires at 2s
    feedWindow(monitor, kFn, 2, 10, 0); // streak 1
    feedWindow(monitor, kFn, 3, 0, 10); // back over threshold: reset
    feedWindow(monitor, kFn, 4, 10, 0); // pooled with w3 still 5x: reset
    feedWindow(monitor, kFn, 5, 10, 0); // streak 1
    monitor.advanceTo(6 * kWindow);
    EXPECT_TRUE(monitor.firing(kFn, AlertKind::FastBurn));

    feedWindow(monitor, kFn, 6, 10, 0); // streak 2: cleared
    monitor.advanceTo(7 * kWindow);
    EXPECT_FALSE(monitor.firing(kFn, AlertKind::FastBurn));
    EXPECT_EQ(monitor.alerts().back().at, 7 * kWindow);
}

TEST(SloMonitorTest, SlowBurnCatchesSustainedBleedTheFastRuleMisses)
{
    SloMonitor monitor = makeMonitor();
    // 30% violations: burn 3 — under the fast threshold (5) but over the
    // slow one (2) once its 4-window span has closed.
    for (int w = 0; w < 4; ++w)
        feedWindow(monitor, kFn, w, 7, 3);
    monitor.advanceTo(4 * kWindow);
    ASSERT_EQ(monitor.alerts().size(), 1u);
    EXPECT_EQ(monitor.alerts()[0].kind, AlertKind::SlowBurn);
    EXPECT_EQ(monitor.alerts()[0].at, 4 * kWindow);
    EXPECT_DOUBLE_EQ(monitor.alerts()[0].burnRate, 3.0);
    EXPECT_FALSE(monitor.firing(kFn, AlertKind::FastBurn));
}

TEST(SloMonitorTest, IdleFunctionsNeverPage)
{
    SloMonitor monitor = makeMonitor();
    monitor.advanceTo(20 * kWindow);
    EXPECT_EQ(monitor.closed(kFn).size(), 20u);
    EXPECT_TRUE(monitor.alerts().empty());
    EXPECT_DOUBLE_EQ(monitor.burnRate(kFn, AlertKind::FastBurn), 0.0);
    EXPECT_DOUBLE_EQ(monitor.burnRate(kFn, AlertKind::SlowBurn), 0.0);
}

TEST(SloMonitorTest, UnregisteredFunctionTrafficIsIgnored)
{
    SloMonitor monitor = makeMonitor();
    monitor.recordCompletion(99, kWindow / 2, kSlo * 2, 0, 0, 0, 0);
    monitor.recordDrop(99, kWindow / 2);
    monitor.advanceTo(kWindow);
    EXPECT_TRUE(monitor.closed(99).empty());
    EXPECT_FALSE(monitor.firing(99, AlertKind::FastBurn));
    EXPECT_EQ(monitor.sloOf(kFn), kSlo);
    EXPECT_EQ(monitor.sloOf(99), 0);
}

TEST(SloMonitorTest, HistogramRingKeepsTheLastWindows)
{
    SloMonitor monitor = makeMonitor(); // ringWindows = 4
    for (int w = 0; w < 6; ++w)
        feedWindow(monitor, kFn, w, 1, 0);
    monitor.advanceTo(6 * kWindow);
    EXPECT_EQ(monitor.ringDepth(kFn), 4u);
    SloMonitor::WindowHists recent = monitor.recentHistograms(kFn);
    // 6 windows closed, evidence bounded to the last 4 (plus the empty
    // open window).
    EXPECT_EQ(recent.latency.count(), 4);
    EXPECT_EQ(recent.cold.count(), 4);
    EXPECT_EQ(recent.latency.max(), 50 * kTicksPerMs);
}

TEST(SloMonitorTest, AlertCallbackSeesEveryEdge)
{
    SloMonitor monitor = makeMonitor(fastOnlyConfig());
    std::vector<SloAlert> seen;
    monitor.setAlertCallback(
        [&seen](const SloAlert &alert) { seen.push_back(alert); });
    feedWindow(monitor, kFn, 0, 5, 5);
    feedWindow(monitor, kFn, 1, 5, 5);
    feedWindow(monitor, kFn, 2, 10, 0);
    feedWindow(monitor, kFn, 3, 10, 0);
    monitor.advanceTo(4 * kWindow);
    ASSERT_EQ(seen.size(), monitor.alerts().size());
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].edge, AlertEdge::Firing);
    EXPECT_EQ(seen[1].edge, AlertEdge::Cleared);
}

// Cross-cell merge -----------------------------------------------------------

TEST(SloHealthMergeTest, MergedWindowsEqualAFlatMonitorFedEverything)
{
    SloMonitorConfig cfg = testConfig();
    SloMonitor cell0, cell1, flat;
    for (SloMonitor *m : {&cell0, &cell1, &flat}) {
        m->configure(cfg);
        m->registerFunction(kFn, kSlo);
    }
    // Asymmetric per-cell traffic, including a window where one cell is
    // completely idle.
    int good0[] = {4, 0, 6, 2}, bad0[] = {1, 0, 4, 0};
    int good1[] = {6, 9, 0, 3}, bad1[] = {2, 1, 0, 5};
    for (int w = 0; w < 4; ++w) {
        feedWindow(cell0, kFn, w, good0[w], bad0[w]);
        feedWindow(cell1, kFn, w, good1[w], bad1[w], /*drops=*/w);
        feedWindow(flat, kFn, w, good0[w] + good1[w], bad0[w] + bad1[w],
                   w);
    }
    cell0.advanceTo(4 * kWindow);
    cell1.advanceTo(4 * kWindow);
    flat.advanceTo(4 * kWindow);

    SloHealthMerge merge;
    merge.configure(cfg);
    merge.setCellCount(2);
    merge.absorb(0, cell0);
    merge.absorb(1, cell1);

    const auto &got = merge.closed(kFn);
    const auto &want = flat.closed(kFn);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t w = 0; w < want.size(); ++w) {
        EXPECT_EQ(got[w].start, want[w].start);
        EXPECT_EQ(got[w].completions, want[w].completions);
        EXPECT_EQ(got[w].violations, want[w].violations);
        EXPECT_EQ(got[w].drops, want[w].drops);
        EXPECT_DOUBLE_EQ(got[w].coldSum, want[w].coldSum);
        EXPECT_DOUBLE_EQ(got[w].queueSum, want[w].queueSum);
        EXPECT_DOUBLE_EQ(got[w].batchSum, want[w].batchSum);
        EXPECT_DOUBLE_EQ(got[w].execSum, want[w].execSum);
        EXPECT_DOUBLE_EQ(got[w].burn, want[w].burn);
    }
    // And the alert stream is identical: the merge evaluates the same
    // rules over the same pooled rows.
    ASSERT_EQ(merge.alerts().size(), flat.alerts().size());
    for (std::size_t i = 0; i < flat.alerts().size(); ++i) {
        EXPECT_EQ(merge.alerts()[i].kind, flat.alerts()[i].kind);
        EXPECT_EQ(merge.alerts()[i].edge, flat.alerts()[i].edge);
        EXPECT_EQ(merge.alerts()[i].at, flat.alerts()[i].at);
        EXPECT_DOUBLE_EQ(merge.alerts()[i].burnRate,
                         flat.alerts()[i].burnRate);
    }
    EXPECT_EQ(merge.sloOf(kFn), kSlo);
}

TEST(SloHealthMergeTest, StragglerCellDefersEvaluation)
{
    SloMonitorConfig cfg = testConfig();
    SloMonitor cell0, cell1;
    for (SloMonitor *m : {&cell0, &cell1}) {
        m->configure(cfg);
        m->registerFunction(kFn, kSlo);
    }
    cell0.advanceTo(3 * kWindow);
    cell1.advanceTo(1 * kWindow);

    SloHealthMerge merge;
    merge.configure(cfg);
    merge.setCellCount(2);
    merge.absorb(0, cell0);
    // Cell 1 has not been absorbed yet: nothing is evaluated.
    EXPECT_TRUE(merge.closed(kFn).empty());
    merge.absorb(1, cell1);
    // Only the window both cells have closed is finalized.
    EXPECT_EQ(merge.closed(kFn).size(), 1u);

    cell1.advanceTo(3 * kWindow);
    merge.absorb(1, cell1);
    EXPECT_EQ(merge.closed(kFn).size(), 3u);
}

TEST(SloHealthMergeTest, ColdCellsDiluteTheClusterBurn)
{
    // One hot cell at 100% violations, one cold cell with 9x the clean
    // traffic: the cluster burn is 1.0 and never pages, while the hot
    // cell alone would. The cluster budget is what the rules protect.
    SloMonitorConfig cfg = testConfig();
    SloMonitor hot, cold;
    for (SloMonitor *m : {&hot, &cold}) {
        m->configure(cfg);
        m->registerFunction(kFn, kSlo);
    }
    for (int w = 0; w < 4; ++w) {
        feedWindow(hot, kFn, w, 0, 10);
        feedWindow(cold, kFn, w, 90, 0);
    }
    hot.advanceTo(4 * kWindow);
    cold.advanceTo(4 * kWindow);
    EXPECT_GT(hot.alertsFired(), 0);

    SloHealthMerge merge;
    merge.configure(cfg);
    merge.setCellCount(2);
    merge.absorb(0, hot);
    merge.absorb(1, cold);
    EXPECT_EQ(merge.alertsFired(), 0);
    EXPECT_DOUBLE_EQ(merge.burnRate(kFn, AlertKind::FastBurn), 1.0);
}

TEST(SloHealthMergeTest, FunctionsAbsentFromACellStillMerge)
{
    SloMonitorConfig cfg = testConfig();
    SloMonitor cell0, cell1;
    cell0.configure(cfg);
    cell1.configure(cfg);
    cell0.registerFunction(7, kSlo);
    cell1.registerFunction(8, kSlo);
    feedWindow(cell0, 7, 0, 3, 1);
    cell0.advanceTo(2 * kWindow);
    cell1.advanceTo(2 * kWindow);

    SloHealthMerge merge;
    merge.configure(cfg);
    merge.setCellCount(2);
    merge.absorb(0, cell0);
    merge.absorb(1, cell1);
    EXPECT_EQ(merge.functions(), (std::vector<std::int32_t>{7, 8}));
    ASSERT_EQ(merge.closed(7).size(), 2u);
    EXPECT_EQ(merge.closed(7)[0].completions, 4);
    EXPECT_EQ(merge.closed(7)[0].violations, 1);
    ASSERT_EQ(merge.closed(8).size(), 2u);
    EXPECT_EQ(merge.closed(8)[0].finished(), 0);
}

TEST(SloHealthMergeTest, RepeatedAbsorbIsIdempotent)
{
    SloMonitorConfig cfg = testConfig();
    SloMonitor cell0;
    cell0.configure(cfg);
    cell0.registerFunction(kFn, kSlo);
    feedWindow(cell0, kFn, 0, 4, 2);
    cell0.advanceTo(kWindow);

    SloHealthMerge merge;
    merge.configure(cfg);
    merge.setCellCount(1);
    merge.absorb(0, cell0);
    merge.absorb(0, cell0); // no new windows: must not double-count
    ASSERT_EQ(merge.closed(kFn).size(), 1u);
    EXPECT_EQ(merge.closed(kFn)[0].completions, 6);
    EXPECT_EQ(merge.closed(kFn)[0].violations, 2);
}

} // namespace
