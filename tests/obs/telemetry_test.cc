/** TelemetryRegistry JSON / Prometheus export structure. */

#include "obs/telemetry.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "metrics/collector.hh"
#include "mini_json.hh"
#include "obs/prof_scope.hh"
#include "sim/time.hh"

namespace {

using namespace infless;
using obs::OverheadProfiler;
using obs::Phase;
using obs::TelemetryRegistry;

metrics::RunMetrics
sampleMetrics()
{
    metrics::RunMetrics m;
    for (int i = 0; i < 10; ++i)
        m.recordArrival(i * sim::kTicksPerSec);
    for (int i = 0; i < 8; ++i) {
        metrics::LatencyBreakdown parts{0, 2 * sim::kTicksPerMs,
                                        30 * sim::kTicksPerMs};
        m.recordCompletion((i + 1) * sim::kTicksPerSec, parts,
                           200 * sim::kTicksPerMs);
    }
    m.recordDrop(5 * sim::kTicksPerSec);
    m.recordDrop(6 * sim::kTicksPerSec);
    m.recordLaunch(true);
    m.recordLaunch(false);
    m.recordBatch(4);
    m.recordExecCache(90, 10);
    return m;
}

TelemetryRegistry
sampleRegistry()
{
    TelemetryRegistry telemetry;
    telemetry.setRun("unit_test", 42, 10.0);
    telemetry.addRunMetrics(sampleMetrics());

    OverheadProfiler prof;
    prof.setEnabled(true);
    prof.record(Phase::Schedule, 5'000);
    prof.record(Phase::Schedule, 7'000);
    telemetry.addOverheads(prof);

    telemetry.gauge("cluster_availability", 0.99, "uptime fraction");
    return telemetry;
}

std::string
jsonOf(const TelemetryRegistry &telemetry)
{
    std::ostringstream os;
    telemetry.writeJson(os);
    return os.str();
}

TEST(Telemetry, JsonIsValidAndSchemaVersioned)
{
    std::string json = jsonOf(sampleRegistry());
    EXPECT_TRUE(infless::testing::jsonValid(json)) << json;
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"benchmark\": \"unit_test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"truncated\": false"), std::string::npos);
}

TEST(Telemetry, JsonCarriesKnownCounterValues)
{
    std::string json = jsonOf(sampleRegistry());
    EXPECT_NE(json.find("\"arrivals_total\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"completions_total\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"drops_total\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"exec_cache_hits_total\": 90"),
              std::string::npos);
    EXPECT_NE(json.find("\"exec_cache_misses_total\": 10"),
              std::string::npos);
    EXPECT_NE(json.find("\"cluster_availability\": 0.99"),
              std::string::npos);
}

TEST(Telemetry, JsonExportsAllOverheadPhases)
{
    std::string json = jsonOf(sampleRegistry());
    // All four phases must be present even when unrecorded, so CI greps
    // and downstream dashboards never miss keys.
    EXPECT_NE(json.find("\"overhead_scheduler_us\""), std::string::npos);
    EXPECT_NE(json.find("\"overhead_cop_us\""), std::string::npos);
    EXPECT_NE(json.find("\"overhead_autoscaler_us\""), std::string::npos);
    EXPECT_NE(json.find("\"overhead_coldstart_policy_us\""),
              std::string::npos);
}

TEST(Telemetry, EmptyRegistryStillWritesValidJson)
{
    TelemetryRegistry telemetry;
    std::string json = jsonOf(telemetry);
    EXPECT_TRUE(infless::testing::jsonValid(json)) << json;
    EXPECT_NE(json.find("\"benchmark\": \"unnamed\""), std::string::npos);
}

TEST(Telemetry, TruncatedFlagPropagates)
{
    TelemetryRegistry telemetry;
    telemetry.setTruncated(true);
    std::string json = jsonOf(telemetry);
    EXPECT_NE(json.find("\"truncated\": true"), std::string::npos);

    std::ostringstream prom;
    telemetry.writePrometheus(prom);
    EXPECT_NE(prom.str().find("infless_run_truncated 1"),
              std::string::npos);
}

TEST(Telemetry, PrometheusExpositionParsesLineByLine)
{
    std::ostringstream os;
    sampleRegistry().writePrometheus(os);
    std::istringstream in(os.str());

    int samples = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Comment lines must be HELP/TYPE or the banner.
            bool known = line.rfind("# HELP ", 0) == 0 ||
                         line.rfind("# TYPE ", 0) == 0 ||
                         line.rfind("# INFless", 0) == 0;
            EXPECT_TRUE(known) << line;
            continue;
        }
        // Sample line: <name>[{labels}] <value>, name restricted to
        // [a-zA-Z0-9_:], value parseable as double.
        auto space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << line;
        std::string name = line.substr(0, space);
        // Native histogram buckets carry an le label: strip a
        // well-formed {...} block before the charset check.
        auto brace = name.find('{');
        if (brace != std::string::npos) {
            ASSERT_EQ(name.back(), '}') << line;
            name = name.substr(0, brace);
        }
        EXPECT_EQ(name.rfind("infless_", 0), 0u) << line;
        for (char c : name) {
            bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
            EXPECT_TRUE(ok) << "bad char in metric name: " << line;
        }
        std::size_t consumed = 0;
        double value = std::stod(line.substr(space + 1), &consumed);
        (void)value;
        EXPECT_GT(consumed, 0u) << line;
        ++samples;
    }
    // Scalars + 6 summary lines per histogram: a substantial exposition.
    EXPECT_GT(samples, 40);
}

TEST(Telemetry, PrometheusNativeHistogramBuckets)
{
    std::ostringstream os;
    sampleRegistry().writePrometheus(os);
    std::string prom = os.str();
    // Native histogram exposition rides alongside the summary lines
    // under a `_hist` suffix so both representations can be scraped.
    EXPECT_NE(prom.find("# TYPE infless_latency_ms_hist histogram"),
              std::string::npos);
    EXPECT_NE(prom.find("infless_latency_ms_hist_count 8"),
              std::string::npos);
    EXPECT_NE(prom.find("infless_latency_ms_hist_sum"),
              std::string::npos);

    // Bucket lines: cumulative counts must be monotone and end with an
    // +Inf bucket equal to the count.
    std::istringstream in(prom);
    std::string line;
    const std::string prefix = "infless_latency_ms_hist_bucket{le=\"";
    long prev = -1;
    long inf_value = -1;
    int buckets = 0;
    while (std::getline(in, line)) {
        if (line.rfind(prefix, 0) != 0)
            continue;
        ++buckets;
        auto close = line.find("\"} ");
        ASSERT_NE(close, std::string::npos) << line;
        long value = std::stol(line.substr(close + 3));
        EXPECT_GE(value, prev) << line;
        prev = value;
        if (line.compare(prefix.size(), 4, "+Inf") == 0)
            inf_value = value;
    }
    EXPECT_GE(buckets, 2);
    EXPECT_EQ(inf_value, 8);
}

TEST(Telemetry, BatchWaitHistogramExported)
{
    std::ostringstream os;
    sampleRegistry().writePrometheus(os);
    std::string prom = os.str();
    // The attribution split's batch-formation component is a first-class
    // histogram (zero-valued here: the sample breakdowns carry no batch
    // wait, but the keys must exist for scrapers).
    EXPECT_NE(prom.find("# TYPE infless_batch_ms summary"),
              std::string::npos);
    EXPECT_NE(prom.find("infless_batch_ms_count 8"), std::string::npos);
}

TEST(Telemetry, PrometheusCounterAndSummaryTypes)
{
    std::ostringstream os;
    sampleRegistry().writePrometheus(os);
    std::string prom = os.str();
    EXPECT_NE(prom.find("# TYPE infless_arrivals_total counter"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE infless_slo_violation_rate gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE infless_overhead_scheduler_us summary"),
              std::string::npos);
    EXPECT_NE(prom.find("infless_overhead_scheduler_us_count 2"),
              std::string::npos);
    EXPECT_NE(prom.find("infless_latency_ms_count 8"), std::string::npos);
}

} // namespace
