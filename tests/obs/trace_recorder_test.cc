/** Ring, sampling, and Chrome-trace export behavior of TraceRecorder. */

#include "obs/trace_recorder.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "mini_json.hh"
#include "sim/logging.hh"

namespace {

using namespace infless;
using obs::SpanKind;
using obs::SpanRecord;
using obs::TraceConfig;
using obs::TraceRecorder;

TraceConfig
config(double rate, std::size_t capacity = 64)
{
    TraceConfig cfg;
    cfg.sampleRate = rate;
    cfg.capacity = capacity;
    return cfg;
}

TEST(TraceRecorder, DefaultDisabledAndStorageFree)
{
    TraceRecorder rec;
    EXPECT_FALSE(rec.enabled());
    EXPECT_FALSE(rec.wants(0));
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.recorded(), 0u);
}

TEST(TraceRecorder, RateZeroSamplesNothingRateOneEverything)
{
    TraceRecorder rec;
    rec.configure(config(0.0));
    for (std::int64_t r = 0; r < 100; ++r)
        EXPECT_FALSE(rec.wants(r));

    rec.configure(config(1.0));
    for (std::int64_t r = 0; r < 100; ++r)
        EXPECT_TRUE(rec.wants(r)) << "request " << r;
}

TEST(TraceRecorder, FractionalSamplingIsDeterministicAndRoughlyFair)
{
    TraceRecorder a, b;
    a.configure(config(0.5));
    b.configure(config(0.5, 1024)); // capacity must not affect sampling

    int sampled = 0;
    for (std::int64_t r = 0; r < 10'000; ++r) {
        bool hit = a.sampled(r);
        EXPECT_EQ(hit, b.sampled(r)) << "request " << r;
        sampled += hit ? 1 : 0;
    }
    // Hash-uniform: expect ~5000 +- a generous band.
    EXPECT_GT(sampled, 4'500);
    EXPECT_LT(sampled, 5'500);
}

TEST(TraceRecorder, RingOverwritesOldestBeyondCapacity)
{
    TraceRecorder rec;
    rec.configure(config(1.0, 4));
    for (std::int64_t r = 0; r < 10; ++r)
        rec.record(SpanKind::Arrival, r, 0, -1, -1, r * 100, 0);

    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.overwritten(), 6u);

    auto spans = rec.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    // Oldest-first: requests 6, 7, 8, 9 survive.
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].request, static_cast<std::int64_t>(6 + i));
}

TEST(TraceRecorder, ReconfigureClearsState)
{
    TraceRecorder rec;
    rec.configure(config(1.0));
    rec.record(SpanKind::Arrival, 1, 0, -1, -1, 0, 0);
    EXPECT_EQ(rec.size(), 1u);

    rec.configure(config(0.0));
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.recorded(), 0u);
    EXPECT_FALSE(rec.enabled());
}

TEST(TraceRecorder, ChromeTraceIsValidJsonWithExpectedEvents)
{
    TraceRecorder rec;
    rec.configure(config(1.0));
    rec.record(SpanKind::Arrival, 7, 2, -1, -1, 1'000, 0);
    rec.record(SpanKind::Queue, 7, 2, 3, 41, 1'000, 500);
    rec.record(SpanKind::Exec, 7, 2, 3, 41, 1'500, 2'000);
    rec.record(SpanKind::Complete, 7, 2, 3, 41, 3'500, 0);
    rec.clusterEvent(SpanKind::ServerCrash, 3, 2'000);
    rec.clusterEvent(SpanKind::ServerRecovery, 3, 9'000);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    std::string trace = os.str();

    EXPECT_TRUE(infless::testing::jsonValid(trace)) << trace;
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"displayTimeUnit\""), std::string::npos);
    // Lifecycle spans and instants.
    EXPECT_NE(trace.find("\"arrival\""), std::string::npos);
    EXPECT_NE(trace.find("\"queue\""), std::string::npos);
    EXPECT_NE(trace.find("\"exec\""), std::string::npos);
    EXPECT_NE(trace.find("\"complete\""), std::string::npos);
    // Fault instants.
    EXPECT_NE(trace.find("\"server_crash\""), std::string::npos);
    EXPECT_NE(trace.find("\"server_recovery\""), std::string::npos);
    // Track metadata: the gateway and server 3 (pid 5).
    EXPECT_NE(trace.find("\"gateway\""), std::string::npos);
    EXPECT_NE(trace.find("\"server 3\""), std::string::npos);
    // Spans carry ph X, instants ph i.
    EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"i\""), std::string::npos);
}

TEST(TraceRecorder, EmptyRecorderStillWritesValidJson)
{
    TraceRecorder rec;
    std::ostringstream os;
    rec.writeChromeTrace(os);
    EXPECT_TRUE(infless::testing::jsonValid(os.str())) << os.str();
}

TEST(TraceRecorder, RejectsOutOfRangeRate)
{
    TraceRecorder rec;
    EXPECT_THROW(rec.configure(config(-0.1)), sim::PanicError);
    EXPECT_THROW(rec.configure(config(1.5)), sim::PanicError);
}

} // namespace
