/**
 * @file
 * Unit tests for the gradient concurrency limiter: growth under flat
 * RTT (only while utilized), multiplicative decrease on timeout/drop
 * with cooldown coalescing and frozen growth, minRTT re-probe epochs,
 * clamps, the warmup quota, and the in-flight enforcement strategy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "overload/adaptive_limit.hh"
#include "sim/time.hh"

namespace {

using infless::overload::AdaptiveLimitConfig;
using infless::overload::ConcurrencyStrategy;
using infless::overload::GradientLimit;
using infless::sim::kTicksPerMs;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

/** Exact-arithmetic config: no EMA damping (both smoothings 1.0), so
 *  every expected limit below is a closed-form expression. */
AdaptiveLimitConfig
testConfig()
{
    AdaptiveLimitConfig cfg;
    cfg.minLimit = 1.0;
    cfg.maxLimit = 100.0;
    cfg.initialLimit = 16.0;
    cfg.probeInterval = kTicksPerSec;
    cfg.rttSmoothing = 1.0; // sampleRTT == last sample
    cfg.smoothing = 1.0;    // limit jumps straight to the estimate
    cfg.maxGradient = 2.0;
    cfg.growthUtilization = 0.5;
    cfg.backoffRatio = 0.5;
    cfg.backoffCooldown = 100 * kTicksPerMs;
    cfg.warmupSamples = 4;
    return cfg;
}

TEST(GradientLimitTest, StartsAtClampedInitialLimit)
{
    GradientLimit lim(testConfig());
    EXPECT_DOUBLE_EQ(lim.limit(), 16.0);
    EXPECT_EQ(lim.samples(), 0);
    EXPECT_EQ(lim.backoffs(), 0);

    AdaptiveLimitConfig wild = testConfig();
    wild.initialLimit = 1e9;
    EXPECT_DOUBLE_EQ(GradientLimit(wild).limit(), wild.maxLimit);
}

TEST(GradientLimitTest, FlatRttGrowsBySqrtHeadroomWhenUtilized)
{
    GradientLimit lim(testConfig());
    // Flat RTT at the baseline: gradient 1, estimate = L + sqrt(L).
    double expected = 16.0;
    Tick t = 0;
    for (int i = 0; i < 5; ++i, t += kTicksPerMs) {
        lim.onSample(t, 10 * kTicksPerMs, false,
                     static_cast<std::int64_t>(expected));
        expected += std::sqrt(expected);
        EXPECT_DOUBLE_EQ(lim.limit(), expected);
    }
    EXPECT_DOUBLE_EQ(lim.gradient(), 1.0);
}

TEST(GradientLimitTest, AppLimitedSamplesDoNotGrow)
{
    GradientLimit lim(testConfig());
    // in_flight below growthUtilization x limit: healthy samples are
    // no evidence that more concurrency is safe.
    for (int i = 0; i < 10; ++i)
        lim.onSample(i * kTicksPerMs, 10 * kTicksPerMs, false, 7);
    EXPECT_DOUBLE_EQ(lim.limit(), 16.0);
    // At exactly the utilization threshold growth resumes.
    lim.onSample(20 * kTicksPerMs, 10 * kTicksPerMs, false, 8);
    EXPECT_DOUBLE_EQ(lim.limit(), 20.0);
}

TEST(GradientLimitTest, TimeoutBacksOffMultiplicatively)
{
    GradientLimit lim(testConfig());
    EXPECT_TRUE(lim.onSample(0, 500 * kTicksPerMs, true, 16));
    EXPECT_DOUBLE_EQ(lim.limit(), 8.0);
    EXPECT_EQ(lim.backoffs(), 1);
}

TEST(GradientLimitTest, DropBacksOffLikeTimeout)
{
    GradientLimit lim(testConfig());
    EXPECT_TRUE(lim.onDrop(0));
    EXPECT_DOUBLE_EQ(lim.limit(), 8.0);
    EXPECT_EQ(lim.backoffs(), 1);
}

TEST(GradientLimitTest, CooldownCoalescesBackoffBursts)
{
    GradientLimit lim(testConfig());
    // One lost batch = many near-simultaneous drops = one signal.
    EXPECT_TRUE(lim.onDrop(0));
    EXPECT_FALSE(lim.onDrop(1));
    EXPECT_FALSE(lim.onDrop(50 * kTicksPerMs));
    EXPECT_DOUBLE_EQ(lim.limit(), 8.0);
    EXPECT_EQ(lim.backoffs(), 1);
    EXPECT_TRUE(lim.onDrop(100 * kTicksPerMs));
    EXPECT_DOUBLE_EQ(lim.limit(), 4.0);
}

TEST(GradientLimitTest, GrowthFreezesDuringBackoffCooldownWhenEnabled)
{
    AdaptiveLimitConfig cfg = testConfig();
    cfg.growthFreeze = true;
    GradientLimit lim(cfg);
    lim.onDrop(0);
    ASSERT_DOUBLE_EQ(lim.limit(), 8.0);
    // Healthy, fully-utilized samples inside the cooldown must not
    // regrow what the backoff just cut — violations and healthy
    // completions interleave while a queue drains.
    lim.onSample(10 * kTicksPerMs, 10 * kTicksPerMs, false, 8);
    lim.onSample(60 * kTicksPerMs, 10 * kTicksPerMs, false, 8);
    EXPECT_DOUBLE_EQ(lim.limit(), 8.0);
    // Past the cooldown, growth resumes.
    lim.onSample(100 * kTicksPerMs, 10 * kTicksPerMs, false, 8);
    EXPECT_DOUBLE_EQ(lim.limit(), 8.0 + std::sqrt(8.0));
}

TEST(GradientLimitTest, GrowthResumesInsideCooldownByDefault)
{
    // Default (freeze off): a healthy, fully-utilized sample regrows
    // the limit immediately even inside the backoff cooldown — on a
    // fixture whose deadline queue already sheds precisely, the limit
    // crashing below queue capacity would trade goodput for sheds.
    GradientLimit lim(testConfig());
    lim.onDrop(0);
    ASSERT_DOUBLE_EQ(lim.limit(), 8.0);
    lim.onSample(10 * kTicksPerMs, 10 * kTicksPerMs, false, 8);
    EXPECT_DOUBLE_EQ(lim.limit(), 8.0 + std::sqrt(8.0));
}

TEST(GradientLimitTest, BackoffFloorsAtMinLimit)
{
    GradientLimit lim(testConfig());
    for (int i = 0; i < 20; ++i)
        lim.onDrop(Tick(i) * 100 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(lim.limit(), 1.0);
}

TEST(GradientLimitTest, GrowthCapsAtMaxLimit)
{
    GradientLimit lim(testConfig());
    for (int i = 0; i < 200; ++i)
        lim.onSample(i * kTicksPerMs, 10 * kTicksPerMs, false, 100);
    EXPECT_DOUBLE_EQ(lim.limit(), 100.0);
}

TEST(GradientLimitTest, GradientIsGrowthOnlyAtDefaultFloor)
{
    // minGradient 1.0 (the default): rising latency cannot shrink the
    // limit through the gradient — decrease is timeout/drop-only. On a
    // deadline-batching platform, below-SLO latency tracks the batching
    // policy, not congestion.
    GradientLimit lim(testConfig());
    lim.onSample(0, 10 * kTicksPerMs, false, 16);
    double after_first = lim.limit();
    lim.onSample(kTicksPerMs, 80 * kTicksPerMs, false, 16);
    EXPECT_DOUBLE_EQ(lim.gradient(), 1.0);
    EXPECT_GE(lim.limit(), after_first);
}

TEST(GradientLimitTest, GradientCapsOneLuckyWindow)
{
    GradientLimit lim(testConfig());
    lim.onSample(0, 100 * kTicksPerMs, false, 16);
    // RTT collapses to a tenth of the baseline: the gradient clamps at
    // maxGradient instead of letting one window double the limit.
    lim.onSample(kTicksPerMs, 10 * kTicksPerMs, false, 1000);
    EXPECT_DOUBLE_EQ(lim.gradient(), 2.0);
}

TEST(GradientLimitTest, ReprobeAdoptsEpochMinAsBaseline)
{
    GradientLimit lim(testConfig());
    lim.onSample(0, 100 * kTicksPerMs, false, 1);
    EXPECT_EQ(lim.minRtt(), 100 * kTicksPerMs);
    // Better smoothed RTTs inside the epoch become the next baseline
    // once the probe interval elapses.
    lim.onSample(200 * kTicksPerMs, 40 * kTicksPerMs, false, 1);
    lim.onSample(400 * kTicksPerMs, 60 * kTicksPerMs, false, 1);
    EXPECT_EQ(lim.minRtt(), 100 * kTicksPerMs); // epoch still open
    lim.onSample(kTicksPerSec, 60 * kTicksPerMs, false, 1);
    EXPECT_EQ(lim.minRtt(), 40 * kTicksPerMs);
}

TEST(GradientLimitTest, WarmupQuotaGatesEnforcementReadiness)
{
    GradientLimit lim(testConfig()); // warmupSamples = 4
    EXPECT_FALSE(lim.warmedUp());
    for (int i = 0; i < 3; ++i) {
        lim.onSample(i * kTicksPerMs, 10 * kTicksPerMs, false, 16);
        EXPECT_FALSE(lim.warmedUp());
    }
    lim.onSample(3 * kTicksPerMs, 10 * kTicksPerMs, false, 16);
    EXPECT_TRUE(lim.warmedUp());
    EXPECT_EQ(lim.samples(), 4);
}

TEST(GradientLimitTest, IdenticalFeedsProduceIdenticalState)
{
    auto run = [] {
        GradientLimit lim(testConfig());
        for (int i = 0; i < 50; ++i) {
            Tick t = i * 10 * kTicksPerMs;
            if (i % 7 == 3)
                lim.onDrop(t);
            else
                lim.onSample(t, (10 + i % 5) * kTicksPerMs, i % 11 == 5,
                             16 + i % 8);
        }
        return std::make_tuple(lim.limit(), lim.minRtt(),
                               lim.gradient(), lim.backoffs(),
                               lim.samples());
    };
    EXPECT_EQ(run(), run());
}

TEST(ConcurrencyStrategyTest, AcquireCapsAtFloorOfLimit)
{
    ConcurrencyStrategy s;
    EXPECT_TRUE(s.tryAcquire(2.9));
    EXPECT_TRUE(s.tryAcquire(2.9));
    EXPECT_FALSE(s.tryAcquire(2.9)); // floor(2.9) = 2
    EXPECT_EQ(s.inFlight(), 2);
    s.release();
    EXPECT_EQ(s.inFlight(), 1);
    EXPECT_TRUE(s.tryAcquire(2.9));
}

TEST(ConcurrencyStrategyTest, SubUnitLimitStillProbesOne)
{
    // A collapsed limit must keep at least one request flowing or the
    // estimator starves and can never observe recovery.
    ConcurrencyStrategy s;
    EXPECT_TRUE(s.tryAcquire(0.3));
    EXPECT_FALSE(s.tryAcquire(0.3));
    s.release();
    EXPECT_TRUE(s.tryAcquire(0.3));
}

TEST(ConcurrencyStrategyTest, ReleaseNeverUnderflows)
{
    ConcurrencyStrategy s;
    s.release();
    EXPECT_EQ(s.inFlight(), 0);
    EXPECT_TRUE(s.tryAcquire(1.0));
}

} // namespace
