/**
 * @file
 * Tests for the brownout controller's enter/exit hysteresis.
 */

#include <gtest/gtest.h>

#include "overload/brownout.hh"
#include "sim/time.hh"

namespace {

using infless::overload::BrownoutConfig;
using infless::overload::BrownoutController;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

BrownoutConfig
testConfig()
{
    BrownoutConfig cfg;
    cfg.enabled = true;
    cfg.window = kTicksPerSec;
    cfg.windowBuckets = 4;
    cfg.enterThreshold = 0.2;
    cfg.exitThreshold = 0.05;
    cfg.minSamples = 10;
    cfg.minHold = 2 * kTicksPerSec;
    cfg.degradedSloMultiplier = 2.0;
    return cfg;
}

Tick
feed(BrownoutController &b, Tick start, int n, bool overloaded)
{
    for (int i = 0; i < n; ++i)
        b.record(start + i * 1000, overloaded);
    return start + n * 1000;
}

TEST(BrownoutTest, DisabledNeverActivates)
{
    BrownoutController b; // default config: disabled
    feed(b, 0, 100, true);
    b.update(kTicksPerSec);
    EXPECT_FALSE(b.active());
    EXPECT_DOUBLE_EQ(b.sloMultiplier(), 1.0);
    EXPECT_EQ(b.entries(), 0);
}

TEST(BrownoutTest, StaysOutBelowMinSamples)
{
    BrownoutController b(testConfig());
    feed(b, 0, 9, true);
    EXPECT_FALSE(b.active());
}

TEST(BrownoutTest, EntersUnderSustainedPressure)
{
    BrownoutController b(testConfig());
    feed(b, 0, 8, false);
    EXPECT_FALSE(b.active());
    feed(b, 8000, 2, true); // 20% of 10 samples: engages
    EXPECT_TRUE(b.active());
    EXPECT_DOUBLE_EQ(b.sloMultiplier(), 2.0);
    EXPECT_EQ(b.entries(), 1);
}

TEST(BrownoutTest, HoldsThroughEarlyRecovery)
{
    BrownoutController b(testConfig());
    Tick t = feed(b, 0, 10, true);
    ASSERT_TRUE(b.active());
    // Clean traffic inside the hold: stays browned out (hysteresis).
    feed(b, t, 20, false);
    b.update(t + kTicksPerSec);
    EXPECT_TRUE(b.active());
    EXPECT_EQ(b.exits(), 0);
}

TEST(BrownoutTest, ExitsAfterHoldWhenPressureClears)
{
    BrownoutController b(testConfig());
    feed(b, 0, 10, true);
    ASSERT_TRUE(b.active());
    // Past the hold with an empty (fully aged-out) window: rate 0.
    b.update(5 * kTicksPerSec);
    EXPECT_FALSE(b.active());
    EXPECT_DOUBLE_EQ(b.sloMultiplier(), 1.0);
    EXPECT_EQ(b.exits(), 1);
}

TEST(BrownoutTest, RelaxesOnlyWhileWindowIsHot)
{
    BrownoutController b(testConfig());
    Tick t = feed(b, 0, 10, true);
    ASSERT_TRUE(b.active());
    EXPECT_TRUE(b.relaxing(t));

    // Clean traffic inside the hold, spread wide enough to age the hot
    // samples out of the 1s window: still browned out, but the deadline
    // stretch reverts with the pressure.
    t = kTicksPerSec + kTicksPerSec / 10;
    for (int i = 0; i < 40; ++i, t += 20 * 1000)
        b.record(t, false);
    EXPECT_TRUE(b.active());
    EXPECT_FALSE(b.relaxing(t));

    // Pressure returns inside the hold: the stretch re-engages without
    // a new entry.
    t = feed(b, t, 40, true);
    EXPECT_TRUE(b.active());
    EXPECT_TRUE(b.relaxing(t));
    EXPECT_EQ(b.entries(), 1);
}

TEST(BrownoutTest, ReentersOnRenewedPressure)
{
    BrownoutController b(testConfig());
    feed(b, 0, 10, true);
    b.update(5 * kTicksPerSec);
    ASSERT_FALSE(b.active());
    feed(b, 6 * kTicksPerSec, 10, true);
    EXPECT_TRUE(b.active());
    EXPECT_EQ(b.entries(), 2);
}

} // namespace
