/**
 * @file
 * Deterministic unit tests for the circuit breaker state machine:
 * closed -> open on failure rate, open -> half-open after the
 * cool-down, half-open -> closed on probe successes or back to open on
 * a probe failure.
 */

#include <gtest/gtest.h>

#include "overload/circuit_breaker.hh"
#include "overload/retry_budget.hh"
#include "sim/time.hh"

namespace {

using infless::overload::BreakerConfig;
using infless::overload::BreakerState;
using infless::overload::breakerStateName;
using infless::overload::CircuitBreaker;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

BreakerConfig
testConfig()
{
    BreakerConfig cfg;
    cfg.enabled = true;
    cfg.window = kTicksPerSec;
    cfg.windowBuckets = 4;
    cfg.openThreshold = 0.5;
    cfg.minSamples = 10;
    cfg.openDuration = kTicksPerSec;
    cfg.probeFraction = 1.0; // every request is a probe while half-open
    cfg.halfOpenSuccesses = 3;
    return cfg;
}

/** Feed @p n outcomes at 1ms spacing starting at @p start. */
Tick
feed(CircuitBreaker &b, Tick start, int n, bool failure)
{
    for (int i = 0; i < n; ++i)
        b.record(start + i * 1000, failure);
    return start + n * 1000;
}

TEST(CircuitBreakerTest, DisabledAlwaysAllows)
{
    CircuitBreaker b; // default config: disabled
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(b.allow(i * 1000, i));
        b.record(i * 1000, true);
    }
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_TRUE(b.transitions().empty());
}

TEST(CircuitBreakerTest, StaysClosedBelowMinSamples)
{
    CircuitBreaker b(testConfig());
    feed(b, 0, 9, true); // all failures, but under minSamples
    EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(CircuitBreakerTest, OpensAtFailureThreshold)
{
    CircuitBreaker b(testConfig());
    feed(b, 0, 5, false);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    feed(b, 5000, 5, true); // 50% over 10 samples: trips
    EXPECT_EQ(b.state(), BreakerState::Open);
    ASSERT_EQ(b.transitions().size(), 1u);
    EXPECT_EQ(b.transitions()[0].from, BreakerState::Closed);
    EXPECT_EQ(b.transitions()[0].to, BreakerState::Open);
}

TEST(CircuitBreakerTest, ShedsWhileOpenUntilCooldown)
{
    CircuitBreaker b(testConfig());
    Tick t = feed(b, 0, 10, true);
    ASSERT_EQ(b.state(), BreakerState::Open);
    // Inside the cool-down every request is shed.
    EXPECT_FALSE(b.allow(t, 1));
    EXPECT_FALSE(b.allow(b.openedAt() + kTicksPerSec - 1, 2));
    EXPECT_EQ(b.state(), BreakerState::Open);
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldownAndAdmitsProbes)
{
    CircuitBreaker b(testConfig());
    feed(b, 0, 10, true);
    Tick after = b.openedAt() + kTicksPerSec;
    // probeFraction 1.0: the first request after the cool-down both
    // advances to half-open and is admitted as a probe.
    EXPECT_TRUE(b.allow(after, 42));
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
}

TEST(CircuitBreakerTest, ProbeSuccessesClose)
{
    CircuitBreaker b(testConfig());
    feed(b, 0, 10, true);
    Tick t = b.openedAt() + kTicksPerSec;
    EXPECT_TRUE(b.allow(t, 0));
    for (int i = 0; i < 3; ++i)
        b.record(t + i, false);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    // closed -> open -> half-open -> closed.
    ASSERT_EQ(b.transitions().size(), 3u);
    EXPECT_EQ(b.transitions()[2].to, BreakerState::Closed);
}

TEST(CircuitBreakerTest, ProbeFailureReopens)
{
    CircuitBreaker b(testConfig());
    feed(b, 0, 10, true);
    Tick t = b.openedAt() + kTicksPerSec;
    EXPECT_TRUE(b.allow(t, 0));
    b.record(t, false);
    b.record(t + 1, true); // one bad probe sends it straight back
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.openedAt(), t + 1);
}

TEST(CircuitBreakerTest, ZeroProbeFractionAdmitsNothingHalfOpen)
{
    BreakerConfig cfg = testConfig();
    cfg.probeFraction = 0.0;
    CircuitBreaker b(cfg);
    feed(b, 0, 10, true);
    Tick t = b.openedAt() + kTicksPerSec;
    // Advances to half-open but the hash gate admits no request.
    EXPECT_FALSE(b.allow(t, 0));
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    EXPECT_FALSE(b.allow(t + 1, 1));
}

TEST(CircuitBreakerTest, ProbeSelectionIsDeterministic)
{
    BreakerConfig cfg = testConfig();
    cfg.probeFraction = 0.3;
    auto decisions = [&cfg] {
        CircuitBreaker b(cfg);
        feed(b, 0, 10, true);
        Tick t = b.openedAt() + kTicksPerSec;
        std::vector<bool> out;
        for (std::int64_t r = 0; r < 64; ++r)
            out.push_back(b.allow(t + r, r));
        return out;
    };
    auto a = decisions();
    auto c = decisions();
    EXPECT_EQ(a, c);
    // Roughly probeFraction of requests pass (hash sampling, not all or
    // nothing).
    int admitted = 0;
    for (bool x : a)
        admitted += x ? 1 : 0;
    EXPECT_GT(admitted, 0);
    EXPECT_LT(admitted, 64);
}

TEST(CircuitBreakerTest, RecoveredWindowStaysClosed)
{
    CircuitBreaker b(testConfig());
    feed(b, 0, 10, true);
    Tick t = b.openedAt() + kTicksPerSec;
    EXPECT_TRUE(b.allow(t, 0));
    for (int i = 0; i < 3; ++i)
        b.record(t + i, false);
    ASSERT_EQ(b.state(), BreakerState::Closed);
    // The pre-open failure window was reset on close: healthy traffic
    // keeps it closed even though the old failures would still be
    // inside the time window.
    feed(b, t + 10, 10, false);
    EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(CircuitBreakerTest, FailedProbeCycleDoesNotWedge)
{
    // The full relapse cycle: open -> half-open -> probe fails ->
    // reopen -> second cooldown -> probes succeed -> closed. A breaker
    // that reopens on a bad probe must remain recoverable — the
    // reopened state is a fresh Open with a fresh cooldown, not a
    // terminal one.
    CircuitBreaker b(testConfig());
    feed(b, 0, 10, true);
    ASSERT_EQ(b.state(), BreakerState::Open);

    Tick t = b.openedAt() + kTicksPerSec;
    EXPECT_TRUE(b.allow(t, 0));
    b.record(t, true); // probe fails: relapse
    ASSERT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.openedAt(), t);

    // Still shedding through the second cooldown.
    EXPECT_FALSE(b.allow(t + kTicksPerSec - 1, 1));

    // Second recovery attempt succeeds: halfOpenSuccesses clean probes
    // close it for good.
    Tick t2 = t + kTicksPerSec;
    EXPECT_TRUE(b.allow(t2, 2));
    ASSERT_EQ(b.state(), BreakerState::HalfOpen);
    for (int i = 0; i < 3; ++i)
        b.record(t2 + i, false);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    // closed->open, open->half, half->open, open->half, half->closed.
    ASSERT_EQ(b.transitions().size(), 5u);
    EXPECT_EQ(b.transitions().back().to, BreakerState::Closed);
    // And it admits traffic again.
    EXPECT_TRUE(b.allow(t2 + 10, 3));
}

TEST(RetryBudgetWedgeTest, ExhaustedBudgetRecoversOnSuccesses)
{
    // An exhausted retry budget must not wedge recovery: first-attempt
    // successes keep depositing, so once the incident passes the
    // bucket refills and retries flow again.
    infless::overload::RetryBudgetConfig cfg;
    cfg.enabled = true;
    cfg.burst = 2.0;
    cfg.refillPerSuccess = 0.5;
    infless::overload::RetryBudget budget(cfg);

    while (budget.tryConsume()) {
    }
    EXPECT_FALSE(budget.tryConsume()); // exhausted
    for (int i = 0; i < 4; ++i)
        budget.onSuccess();
    EXPECT_TRUE(budget.tryConsume());
    EXPECT_TRUE(budget.tryConsume());
    EXPECT_FALSE(budget.tryConsume()); // capped at burst again
}

TEST(CircuitBreakerTest, StateNames)
{
    EXPECT_STREQ(breakerStateName(BreakerState::Closed), "closed");
    EXPECT_STREQ(breakerStateName(BreakerState::Open), "open");
    EXPECT_STREQ(breakerStateName(BreakerState::HalfOpen), "half_open");
}

} // namespace
