/**
 * @file
 * Tests for the success-refilled retry-budget token bucket.
 */

#include <gtest/gtest.h>

#include "overload/retry_budget.hh"

namespace {

using infless::overload::RetryBudget;
using infless::overload::RetryBudgetConfig;

RetryBudgetConfig
enabledConfig(double burst, double refill)
{
    RetryBudgetConfig cfg;
    cfg.enabled = true;
    cfg.burst = burst;
    cfg.refillPerSuccess = refill;
    return cfg;
}

TEST(RetryBudgetTest, DisabledAlwaysAllows)
{
    RetryBudget budget; // default config: disabled
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(budget.tryConsume());
}

TEST(RetryBudgetTest, BurstBoundsConsecutiveRetries)
{
    RetryBudget budget(enabledConfig(3.0, 0.1));
    EXPECT_TRUE(budget.tryConsume());
    EXPECT_TRUE(budget.tryConsume());
    EXPECT_TRUE(budget.tryConsume());
    EXPECT_FALSE(budget.tryConsume());
    EXPECT_DOUBLE_EQ(budget.tokens(), 0.0);
}

TEST(RetryBudgetTest, SuccessesRefillTheBucket)
{
    // Refill 0.25 is exact in binary, so the token arithmetic below has
    // no rounding slack: four successes buy exactly one retry.
    RetryBudget budget(enabledConfig(3.0, 0.25));
    while (budget.tryConsume()) {
    }
    for (int i = 0; i < 3; ++i)
        budget.onSuccess();
    EXPECT_FALSE(budget.tryConsume());
    budget.onSuccess();
    EXPECT_TRUE(budget.tryConsume());
    EXPECT_FALSE(budget.tryConsume());
}

TEST(RetryBudgetTest, RefillCapsAtBurst)
{
    RetryBudget budget(enabledConfig(2.0, 0.5));
    for (int i = 0; i < 100; ++i)
        budget.onSuccess();
    EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
    EXPECT_TRUE(budget.tryConsume());
    EXPECT_TRUE(budget.tryConsume());
    EXPECT_FALSE(budget.tryConsume());
}

TEST(RetryBudgetTest, ZeroBurstDeniesEverything)
{
    RetryBudget budget(enabledConfig(0.0, 0.5));
    budget.onSuccess();
    budget.onSuccess();
    EXPECT_FALSE(budget.tryConsume());
    EXPECT_DOUBLE_EQ(budget.tokens(), 0.0);
}

} // namespace
