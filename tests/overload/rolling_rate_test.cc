/**
 * @file
 * Tests for the sliding-window failure-rate estimator.
 */

#include <gtest/gtest.h>

#include "overload/rolling_rate.hh"
#include "sim/time.hh"

namespace {

using infless::overload::RollingRate;
using infless::sim::kTicksPerSec;

TEST(RollingRateTest, StartsEmpty)
{
    RollingRate rate(kTicksPerSec, 4);
    EXPECT_EQ(rate.samples(0), 0);
    EXPECT_DOUBLE_EQ(rate.failureRate(0), 0.0);
}

TEST(RollingRateTest, CountsOutcomesInsideWindow)
{
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, false);
    rate.record(100, true);
    rate.record(200, true);
    EXPECT_EQ(rate.samples(200), 3);
    EXPECT_DOUBLE_EQ(rate.failureRate(200), 2.0 / 3.0);
}

TEST(RollingRateTest, OldBucketsExpire)
{
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, true);
    EXPECT_EQ(rate.samples(0), 1);
    // One full window later the failure has aged out entirely.
    rate.record(2 * kTicksPerSec, false);
    EXPECT_EQ(rate.samples(2 * kTicksPerSec), 1);
    EXPECT_DOUBLE_EQ(rate.failureRate(2 * kTicksPerSec), 0.0);
}

TEST(RollingRateTest, SlotReuseResetsStaleCounts)
{
    // 4 buckets of 250ms: bucket index wraps modulo 4, so an outcome at
    // t=0 and one at t=1s land in the same slot; the later record must
    // not inherit the earlier slot's counts.
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, true);
    rate.record(kTicksPerSec, false);
    EXPECT_EQ(rate.samples(kTicksPerSec), 1);
    EXPECT_DOUBLE_EQ(rate.failureRate(kTicksPerSec), 0.0);
}

TEST(RollingRateTest, ResetClearsEverything)
{
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, true);
    rate.reset();
    EXPECT_EQ(rate.samples(0), 0);
    EXPECT_DOUBLE_EQ(rate.failureRate(0), 0.0);
}

} // namespace
