/**
 * @file
 * Tests for the sliding-window failure-rate estimator.
 */

#include <gtest/gtest.h>

#include "overload/rolling_rate.hh"
#include "sim/time.hh"

namespace {

using infless::overload::RollingRate;
using infless::sim::kTicksPerSec;
using infless::sim::Tick;

TEST(RollingRateTest, StartsEmpty)
{
    RollingRate rate(kTicksPerSec, 4);
    EXPECT_EQ(rate.samples(0), 0);
    EXPECT_DOUBLE_EQ(rate.failureRate(0), 0.0);
}

TEST(RollingRateTest, CountsOutcomesInsideWindow)
{
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, false);
    rate.record(100, true);
    rate.record(200, true);
    EXPECT_EQ(rate.samples(200), 3);
    EXPECT_DOUBLE_EQ(rate.failureRate(200), 2.0 / 3.0);
}

TEST(RollingRateTest, OldBucketsExpire)
{
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, true);
    EXPECT_EQ(rate.samples(0), 1);
    // One full window later the failure has aged out entirely.
    rate.record(2 * kTicksPerSec, false);
    EXPECT_EQ(rate.samples(2 * kTicksPerSec), 1);
    EXPECT_DOUBLE_EQ(rate.failureRate(2 * kTicksPerSec), 0.0);
}

TEST(RollingRateTest, SlotReuseResetsStaleCounts)
{
    // 4 buckets of 250ms: bucket index wraps modulo 4, so an outcome at
    // t=0 and one at t=1s land in the same slot; the later record must
    // not inherit the earlier slot's counts.
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, true);
    rate.record(kTicksPerSec, false);
    EXPECT_EQ(rate.samples(kTicksPerSec), 1);
    EXPECT_DOUBLE_EQ(rate.failureRate(kTicksPerSec), 0.0);
}

// 4 buckets over a 1s window: each bucket spans 250ms of sim time.
constexpr Tick kBucket = kTicksPerSec / 4;

TEST(RollingRateTest, IdleGapLongerThanWindowReadsEmpty)
{
    // Reads after a long idle gap must not resurrect pre-gap counts:
    // every slot still holds an old absolute bucket index and is
    // skipped without mutation (pure-read staleness check).
    RollingRate rate(kTicksPerSec, 4);
    for (int i = 0; i < 8; ++i)
        rate.record(i * 100'000, true); // buckets 0,0,0,1,1,2,2,2
    EXPECT_EQ(rate.samples(700'000), 8);
    EXPECT_EQ(rate.samples(100 * kTicksPerSec), 0);
    EXPECT_DOUBLE_EQ(rate.failureRate(100 * kTicksPerSec), 0.0);
    // The stale state is still there (reads don't mutate) and ages out
    // per-slot, not all-or-nothing: a read just inside the horizon
    // still sees the tail bucket (t=500..700ms -> three outcomes).
    EXPECT_EQ(rate.samples(700'000 + 3 * kBucket), 3);
}

TEST(RollingRateTest, PartialGapExpiresOnlyTheStaleBuckets)
{
    // Outcomes in buckets 0 and 1, then a gap to bucket 4: bucket 0
    // has left the window [1..4], bucket 1 has not.
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, true);                // bucket 0
    rate.record(kBucket, false);         // bucket 1
    rate.record(kBucket + 10'000, false); // bucket 1
    Tick t = 4 * kBucket;                // bucket 4; window spans 1..4
    EXPECT_EQ(rate.samples(t), 2);
    EXPECT_DOUBLE_EQ(rate.failureRate(t), 0.0);
}

TEST(RollingRateTest, WrapAroundReuseAfterIdleGap)
{
    // After a multiple-of-ring gap the new outcome lands in the same
    // physical slot as the old one; the slot must be reinitialised for
    // the new bucket index, and the other stale slots must stay dead.
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, true);           // bucket 0, slot 0
    rate.record(100'000, true);     // bucket 0, slot 0
    rate.record(kBucket + 50'000, true); // bucket 1, slot 1
    Tick later = 8 * kBucket;       // bucket 8 -> slot 0 again
    rate.record(later, false);
    EXPECT_EQ(rate.samples(later), 1);
    EXPECT_DOUBLE_EQ(rate.failureRate(later), 0.0);
}

TEST(RollingRateTest, ResetClearsEverything)
{
    RollingRate rate(kTicksPerSec, 4);
    rate.record(0, true);
    rate.reset();
    EXPECT_EQ(rate.samples(0), 0);
    EXPECT_DOUBLE_EQ(rate.failureRate(0), 0.0);
}

} // namespace
