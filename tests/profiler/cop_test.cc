/**
 * @file
 * Tests for the COP predictor — including the Fig. 8 accuracy property:
 * average prediction error under 10% across batch/resource configs.
 */

#include <gtest/gtest.h>

#include <string>

#include "cluster/resources.hh"
#include "models/exec_model.hh"
#include "models/model_zoo.hh"
#include "profiler/cop.hh"
#include "profiler/op_profile_db.hh"
#include "sim/logging.hh"

namespace {

using infless::cluster::Resources;
using infless::models::ExecModel;
using infless::models::ModelZoo;
using infless::profiler::CopOptions;
using infless::profiler::CopPredictor;
using infless::profiler::OpProfileDb;

struct CopFixture : ::testing::Test
{
    ExecModel exec;
    OpProfileDb db{exec};
    CopPredictor cop{db};
};

TEST_F(CopFixture, PredictionIsPositiveForEveryModel)
{
    for (const auto &info : ModelZoo::shared().all()) {
        EXPECT_GT(cop.predict(info, 1, Resources{1000, 0, 0}), 0)
            << info.name;
    }
}

TEST_F(CopFixture, SafetyOffsetInflatesPrediction)
{
    const auto &resnet = ModelZoo::shared().get("ResNet-50");
    Resources res{2000, 10, 0};
    double raw = cop.rawMicros(resnet, 4, res);
    double predicted = static_cast<double>(cop.predict(resnet, 4, res));
    EXPECT_NEAR(predicted / raw, 1.10, 0.001);
}

TEST_F(CopFixture, AblationOffsetsApply)
{
    const auto &resnet = ModelZoo::shared().get("ResNet-50");
    Resources res{2000, 10, 0};
    OpProfileDb db15(exec), db2(exec);
    CopPredictor op15(db15, CopOptions{0.5});
    CopPredictor op2(db2, CopOptions{1.0});
    double raw = cop.rawMicros(resnet, 4, res);
    EXPECT_NEAR(static_cast<double>(op15.predict(resnet, 4, res)) / raw,
                1.5, 0.01);
    EXPECT_NEAR(static_cast<double>(op2.predict(resnet, 4, res)) / raw,
                2.0, 0.01);
}

TEST_F(CopFixture, PredictionsAreMemoizedConsistently)
{
    const auto &bert = ModelZoo::shared().get("Bert-v1");
    Resources res{2000, 20, 0};
    auto first = cop.predict(bert, 8, res);
    auto second = cop.predict(bert, 8, res);
    EXPECT_EQ(first, second);
}

TEST_F(CopFixture, MeanPredictionErrorUnderTenPercent)
{
    // Fig. 8: the operator-combination model achieves <10% average error
    // for ResNet-50, MobileNet and LSTM-2365.
    for (const char *name : {"ResNet-50", "MobileNet", "LSTM-2365"}) {
        const auto &info = ModelZoo::shared().get(name);
        double total = 0.0;
        int configs = 0;
        for (int b : {1, 2, 4, 8, 16, 32}) {
            for (std::int64_t cpu : {1000, 2000, 4000}) {
                for (std::int64_t gpu : {0, 10, 20, 30}) {
                    Resources res{cpu, gpu, 0};
                    total += cop.predictionError(exec, info, b, res);
                    ++configs;
                }
            }
        }
        double mean = total / configs;
        EXPECT_LT(mean, 0.10) << name;
        EXPECT_GT(mean, 0.01) << name << " (suspiciously perfect)";
    }
}

TEST_F(CopFixture, LstmErrsMoreThanChainModels)
{
    // Fig. 8's ordering: branchy LSTM-2365 has the highest error.
    auto mean_error = [&](const std::string &name) {
        const auto &info = ModelZoo::shared().get(name);
        double total = 0.0;
        int configs = 0;
        for (int b : {1, 2, 4, 8, 16, 32}) {
            for (std::int64_t gpu : {0, 10, 20, 30}) {
                total += cop.predictionError(exec, info, b,
                                             Resources{2000, gpu, 0});
                ++configs;
            }
        }
        return total / configs;
    };
    double lstm = mean_error("LSTM-2365");
    EXPECT_GT(lstm, mean_error("MobileNet"));
    EXPECT_GT(lstm, mean_error("VGGNet"));
}

TEST_F(CopFixture, PredictionTracksResourceOrdering)
{
    // More resources -> lower predicted latency (weak monotonicity).
    const auto &resnet = ModelZoo::shared().get("ResNet-50");
    auto weak = cop.predict(resnet, 4, Resources{1000, 5, 0});
    auto strong = cop.predict(resnet, 4, Resources{4000, 50, 0});
    EXPECT_GT(weak, strong);
}

TEST_F(CopFixture, NegativeOffsetRejected)
{
    OpProfileDb db2(exec);
    EXPECT_THROW(CopPredictor(db2, CopOptions{-0.1}),
                 infless::sim::PanicError);
}

} // namespace
