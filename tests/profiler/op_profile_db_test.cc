/**
 * @file
 * Unit tests for the operator profile database.
 */

#include <gtest/gtest.h>

#include "cluster/resources.hh"
#include "models/exec_model.hh"
#include "models/operator.hh"
#include "profiler/op_profile_db.hh"

namespace {

using infless::cluster::Resources;
using infless::models::ExecModel;
using infless::models::OpKind;
using infless::models::OpNode;
using infless::profiler::OpProfileDb;

TEST(OpProfileDbTest, SnapResourcesPicksNearestGridPoint)
{
    ExecModel exec;
    OpProfileDb db(exec);
    Resources snapped = db.snapResources(Resources{1100, 12, 512});
    EXPECT_EQ(snapped.cpuMillicores, 1000);
    EXPECT_EQ(snapped.gpuSmPercent, 10);
}

TEST(OpProfileDbTest, ZeroGpuStaysZero)
{
    ExecModel exec;
    OpProfileDb db(exec);
    // A CPU-only request must never snap onto a GPU profile.
    EXPECT_EQ(db.snapResources(Resources{1000, 0, 0}).gpuSmPercent, 0);
}

TEST(OpProfileDbTest, SnapBatchPicksNearest)
{
    ExecModel exec;
    OpProfileDb db(exec);
    EXPECT_EQ(db.snapBatch(1), 1);
    EXPECT_EQ(db.snapBatch(3), 2); // |3-2| < |3-4|
    EXPECT_EQ(db.snapBatch(6), 4); // |6-4| < |6-8| -> nearest-lower wins tie-free
    EXPECT_EQ(db.snapBatch(100), 64);
}

TEST(OpProfileDbTest, OnGridLookupMatchesTruthClosely)
{
    ExecModel exec;
    OpProfileDb db(exec);
    OpNode op{OpKind::Conv2D, 1.0};
    Resources res{2000, 10, 0};
    double measured = db.lookupMicros(op, 4, res);
    double truth = exec.opMicros(op, 4, res);
    // Only the gflops-bucket interpolation separates them.
    EXPECT_NEAR(measured / truth, 1.0, 0.12);
}

TEST(OpProfileDbTest, LookupsAreMemoized)
{
    ExecModel exec;
    OpProfileDb db(exec);
    OpNode op{OpKind::MatMul, 0.5};
    Resources res{1000, 0, 0};
    db.lookupMicros(op, 1, res);
    std::size_t after_first = db.size();
    db.lookupMicros(op, 1, res);
    EXPECT_EQ(db.size(), after_first);
    // A different batch is a new profile.
    db.lookupMicros(op, 8, res);
    EXPECT_GT(db.size(), after_first);
}

TEST(OpProfileDbTest, NearbyWorkSharesABucket)
{
    ExecModel exec;
    OpProfileDb db(exec);
    Resources res{1000, 0, 0};
    db.lookupMicros(OpNode{OpKind::MatMul, 0.500}, 1, res);
    std::size_t n = db.size();
    // 3% away: same quarter-octave bucket, no new measurement.
    db.lookupMicros(OpNode{OpKind::MatMul, 0.515}, 1, res);
    EXPECT_EQ(db.size(), n);
}

TEST(OpProfileDbTest, InterpolationScalesWithWork)
{
    ExecModel exec;
    OpProfileDb db(exec);
    Resources res{1000, 0, 0};
    double t1 = db.lookupMicros(OpNode{OpKind::MatMul, 0.500}, 1, res);
    double t2 = db.lookupMicros(OpNode{OpKind::MatMul, 0.515}, 1, res);
    EXPECT_NEAR(t2 / t1, 0.515 / 0.500, 1e-9);
}

TEST(OpProfileDbTest, ZeroWorkOpsReturnOverheadOnly)
{
    ExecModel exec;
    OpProfileDb db(exec);
    OpNode op{OpKind::Identity, 0.0};
    double t = db.lookupMicros(op, 1, Resources{1000, 0, 0});
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 10.0); // just the dispatch overhead, microseconds
}

TEST(OpProfileDbTest, TruthAccessorExposesExecModel)
{
    ExecModel exec;
    OpProfileDb db(exec);
    EXPECT_EQ(&db.truth(), &exec);
}

} // namespace
