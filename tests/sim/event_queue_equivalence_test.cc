/**
 * @file
 * EventQueue vs. LegacyEventQueue equivalence.
 *
 * The overhauled engine must preserve the legacy (time, priority,
 * insertion-order) total order exactly: the tests replay identical
 * randomized interleavings of schedule / scheduleFixed / cancel /
 * runNext / runUntil / runAll against both queues and assert identical
 * execution traces, clocks, and counters. Any ordering regression in the
 * slot/heap redesign shows up as a trace divergence here.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"

namespace {

using infless::sim::EventQueue;
using infless::sim::LegacyEventQueue;
using infless::sim::Rng;
using infless::sim::Tick;

/** One executed event, as observed by the callbacks. */
struct TraceEntry
{
    std::uint64_t tag;
    Tick when;

    bool
    operator==(const TraceEntry &other) const
    {
        return tag == other.tag && when == other.when;
    }
};

/**
 * Drives one queue through a scripted random interleaving, recording the
 * execution trace. The script is derived purely from the seed, so both
 * queue types replay the exact same operations in the same order —
 * including cancels, which target the i-th not-yet-cancelled handle.
 */
template <typename Queue>
struct Driver
{
    Queue q;
    Rng rng;
    std::vector<TraceEntry> trace;
    std::vector<std::uint64_t> handles; ///< cancellable, not yet cancelled

    explicit Driver(std::uint64_t seed) : rng(seed) {}

    void
    scheduleOne(bool fixed)
    {
        Tick when = q.now() + rng.uniformInt(0, 50);
        int priority = static_cast<int>(rng.uniformInt(-2, 2));
        std::uint64_t tag = rng.raw();
        auto cb = [this, tag] {
            trace.push_back(TraceEntry{tag, q.now()});
            // Nested scheduling from inside a callback, sometimes.
            if ((tag & 7) == 0) {
                std::uint64_t nested_tag = tag * 0x9e3779b97f4a7c15ULL;
                q.scheduleFixed(q.now() + 1 + (tag % 5),
                                [this, nested_tag] {
                                    trace.push_back(TraceEntry{
                                        nested_tag, q.now()});
                                });
            }
        };
        if (fixed) {
            q.scheduleFixed(when, cb, priority);
        } else {
            handles.push_back(q.schedule(when, cb, priority));
        }
    }

    /** One scripted step; mirrors exactly across queue types. */
    void
    step()
    {
        switch (rng.uniformInt(0, 9)) {
          case 0:
          case 1:
          case 2:
            scheduleOne(false);
            break;
          case 3:
          case 4:
          case 5:
            scheduleOne(true);
            break;
          case 6: // cancel a random outstanding handle
            if (!handles.empty()) {
                std::size_t i = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(handles.size()) - 1));
                q.cancel(handles[i]);
                handles.erase(handles.begin() +
                              static_cast<std::ptrdiff_t>(i));
            }
            break;
          case 7:
            q.runNext();
            break;
          case 8:
            q.runUntil(q.now() + rng.uniformInt(0, 30));
            break;
          case 9: // double-cancel attempt on an already-cancelled id
            if (!handles.empty()) {
                std::uint64_t id = handles.back();
                handles.pop_back();
                q.cancel(id);
                q.cancel(id);
            }
            break;
        }
    }
};

void
runEquivalence(std::uint64_t seed, int steps)
{
    Driver<LegacyEventQueue> legacy(seed);
    Driver<EventQueue> engine(seed);
    for (int i = 0; i < steps; ++i) {
        legacy.step();
        engine.step();
        ASSERT_EQ(legacy.q.now(), engine.q.now())
            << "clock diverged at step " << i << " (seed " << seed << ")";
        ASSERT_EQ(legacy.q.pending(), engine.q.pending())
            << "pending diverged at step " << i << " (seed " << seed
            << ")";
    }
    legacy.q.runAll();
    engine.q.runAll();
    EXPECT_EQ(legacy.trace.size(), engine.trace.size());
    ASSERT_EQ(legacy.trace == engine.trace, true)
        << "execution traces diverged (seed " << seed << ")";
    EXPECT_EQ(legacy.q.now(), engine.q.now());
    EXPECT_EQ(legacy.q.executed(), engine.q.executed());
    EXPECT_TRUE(engine.q.empty());
    EXPECT_FALSE(engine.q.truncated());
}

TEST(EventQueueEquivalenceTest, RandomInterleavingsMatchLegacyTraces)
{
    for (std::uint64_t seed = 1; seed <= 24; ++seed)
        runEquivalence(seed, 400);
}

TEST(EventQueueEquivalenceTest, LongDrainMatchesLegacy)
{
    runEquivalence(977, 5'000);
}

TEST(EventQueueEquivalenceTest, SameTickTieBreakMatchesLegacy)
{
    // Dense same-tick scheduling stresses the (priority, insertion-order)
    // tie-break specifically.
    LegacyEventQueue legacy;
    EventQueue engine;
    std::vector<int> legacy_order;
    std::vector<int> engine_order;
    Rng rng(55);
    for (int i = 0; i < 500; ++i) {
        Tick when = rng.uniformInt(0, 3);
        int priority = static_cast<int>(rng.uniformInt(-1, 1));
        bool fixed = rng.bernoulli(0.5);
        if (fixed) {
            legacy.scheduleFixed(when, [&, i] { legacy_order.push_back(i); },
                                 priority);
            engine.scheduleFixed(when, [&, i] { engine_order.push_back(i); },
                                 priority);
        } else {
            legacy.schedule(when, [&, i] { legacy_order.push_back(i); },
                            priority);
            engine.schedule(when, [&, i] { engine_order.push_back(i); },
                            priority);
        }
    }
    legacy.runAll();
    engine.runAll();
    EXPECT_EQ(legacy_order, engine_order);
}

} // namespace
