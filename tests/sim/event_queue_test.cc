/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace {

using infless::sim::EventQueue;
using infless::sim::PanicError;
using infless::sim::Tick;

TEST(EventQueueTest, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.runNext());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); }, 0);
    q.schedule(5, [&] { order.push_back(2); }, 0);
    q.schedule(5, [&] { order.push_back(0); }, -1);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, ClockAdvancesToEventTime)
{
    EventQueue q;
    Tick seen = -1;
    q.schedule(42, [&] { seen = q.now(); });
    q.runAll();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runAll();
    EXPECT_THROW(q.schedule(50, [] {}), PanicError);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.runAll();
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterExecutionReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    q.runAll();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelledEventsDoNotCountAsPending)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(id);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue q;
    std::vector<Tick> fired;
    for (Tick t : {5, 10, 15, 20})
        q.schedule(t, [&, t] { fired.push_back(t); });
    EXPECT_EQ(q.runUntil(15), 3u);
    EXPECT_EQ(fired, (std::vector<Tick>{5, 10, 15}));
    EXPECT_EQ(q.now(), 15);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockEvenWithoutEvents)
{
    EventQueue q;
    EXPECT_EQ(q.runUntil(500), 0u);
    EXPECT_EQ(q.now(), 500);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            q.schedule(q.now() + 10, chain);
    };
    q.schedule(10, chain);
    q.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 50);
}

TEST(EventQueueTest, EventCanCancelLaterEvent)
{
    EventQueue q;
    bool second_ran = false;
    auto second = q.schedule(20, [&] { second_ran = true; });
    q.schedule(10, [&] { q.cancel(second); });
    q.runAll();
    EXPECT_FALSE(second_ran);
}

TEST(EventQueueTest, ExecutedCountsLifetimeEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(i, [] {});
    q.runAll();
    EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueueTest, RunAllReportsTruncationOnRunawaySelfRescheduling)
{
    EventQueue q;
    std::function<void()> forever = [&] {
        q.schedule(q.now() + 1, forever);
    };
    q.schedule(0, forever);

    std::vector<std::string> warnings;
    auto previous = infless::sim::setWarnHandler(
        [&](const std::string &msg) { warnings.push_back(msg); });
    EXPECT_EQ(q.runAll(1000), 1000u);
    infless::sim::setWarnHandler(previous);

    EXPECT_TRUE(q.truncated());
    EXPECT_FALSE(q.empty()) << "the runaway event must still be pending";
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("truncated"), std::string::npos);
}

TEST(EventQueueTest, RunAllOfExactlyMaxEventsIsACleanDrain)
{
    // The legacy engine could not tell "drained in exactly max_events"
    // from "stopped at the valve"; the flag distinguishes them.
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [] {});
    EXPECT_EQ(q.runAll(10), 10u);
    EXPECT_FALSE(q.truncated());
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TruncatedFlagResetsOnNextRunAll)
{
    EventQueue q;
    std::function<void()> forever = [&] {
        q.schedule(q.now() + 1, forever);
    };
    q.schedule(0, forever);
    auto previous = infless::sim::setWarnHandler([](const std::string &) {});
    q.runAll(100);
    EXPECT_TRUE(q.truncated());
    q.runAll(100);
    infless::sim::setWarnHandler(previous);
    EXPECT_TRUE(q.truncated()); // still runaway
    // A queue that then drains cleanly clears the flag.
    EventQueue clean;
    clean.schedule(5, [] {});
    clean.runAll();
    EXPECT_FALSE(clean.truncated());
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = -1;
    bool monotonic = true;
    for (int i = 0; i < 10'000; ++i) {
        Tick when = (i * 7919) % 1000; // pseudo-shuffled times
        q.schedule(when, [&, when] {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    q.runAll();
    EXPECT_TRUE(monotonic);
}

TEST(EventQueueTest, FixedEventsRunInOrderWithCancellable)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFixed(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.scheduleFixed(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.pending(), 3u);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, FixedEventsCannotBeCancelled)
{
    EventQueue q;
    int runs = 0;
    auto id = q.scheduleFixed(10, [&] { ++runs; });
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.pending(), 1u);
    q.runAll();
    EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, FixedSameTickOrderedByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFixed(10, [&] { order.push_back(2); }, 1);
    q.scheduleFixed(10, [&] { order.push_back(1); }, 0);
    q.schedule(10, [&] { order.push_back(3); }, 2);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EmptyAndPendingTrackMixedKinds)
{
    EventQueue q;
    auto cancellable = q.schedule(10, [] {});
    q.scheduleFixed(20, [] {});
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_TRUE(q.cancel(cancellable));
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.empty());
    q.runAll();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelledEntriesSkippedAroundFixedOnes)
{
    EventQueue q;
    std::vector<int> order;
    auto a = q.schedule(10, [&] { order.push_back(1); });
    q.scheduleFixed(15, [&] { order.push_back(2); });
    auto b = q.schedule(20, [&] { order.push_back(3); });
    q.scheduleFixed(25, [&] { order.push_back(4); });
    EXPECT_TRUE(q.cancel(a));
    EXPECT_TRUE(q.cancel(b));
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{2, 4}));
    EXPECT_EQ(q.now(), 25);
}

TEST(EventQueueTest, ReserveDoesNotDisturbPendingEvents)
{
    EventQueue q;
    int runs = 0;
    q.scheduleFixed(5, [&] { ++runs; });
    q.reserve(100'000);
    q.schedule(6, [&] { ++runs; });
    q.runAll();
    EXPECT_EQ(runs, 2);
}

TEST(EventQueueTest, ManyFixedEventsStressOrdering)
{
    EventQueue q;
    q.reserve(10'000);
    Tick last = -1;
    bool monotonic = true;
    for (int i = 0; i < 10'000; ++i) {
        Tick when = (i * 104729) % 997; // pseudo-shuffled times
        q.scheduleFixed(when, [&, when] {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    EXPECT_EQ(q.pending(), 10'000u);
    q.runAll();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.executed(), 10'000u);
}

TEST(EventQueueTest, CancellationStatsCountOnlySuccessfulCancels)
{
    EventQueue q;
    EXPECT_EQ(q.cancellations(), 0u);
    EXPECT_EQ(q.deadEntries(), 0u);
    EXPECT_EQ(q.deadEntryRatio(), 0.0);

    auto a = q.schedule(10, [] {});
    auto b = q.schedule(20, [] {});
    q.scheduleFixed(30, [] {});
    EXPECT_TRUE(q.cancel(a));
    EXPECT_EQ(q.cancellations(), 1u);
    EXPECT_EQ(q.deadEntries(), 1u);
    // 1 dead of 3 heap entries.
    EXPECT_NEAR(q.deadEntryRatio(), 1.0 / 3.0, 1e-12);

    // Repeated / invalid cancels do not inflate the counter.
    EXPECT_FALSE(q.cancel(a));
    EXPECT_EQ(q.cancellations(), 1u);
    EXPECT_TRUE(q.cancel(b));
    EXPECT_EQ(q.cancellations(), 2u);

    q.runAll();
    EXPECT_EQ(q.deadEntries(), 0u);
    EXPECT_EQ(q.deadEntryRatio(), 0.0);
    EXPECT_EQ(q.cancellations(), 2u); // lifetime counter survives drains
}

TEST(EventQueueTest, CompactionStatsCountBulkCompactions)
{
    EventQueue q;
    EXPECT_EQ(q.compactions(), 0u);
    // Build a heap past kCompactMin, then cancel more than half of it:
    // the dead-majority trigger must run at least one bulk compaction.
    std::vector<infless::sim::EventId> ids;
    int runs = 0;
    for (int i = 0; i < 200; ++i)
        ids.push_back(q.schedule(100 + i, [&] { ++runs; }));
    for (int i = 0; i < 150; ++i)
        EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    EXPECT_GE(q.compactions(), 1u);
    EXPECT_EQ(q.cancellations(), 150u);
    // Compaction evicted the dead entries without touching live ones.
    EXPECT_EQ(q.pending(), 50u);
    q.runAll();
    EXPECT_EQ(runs, 50);
}

} // namespace
