/**
 * @file
 * Unit tests for the small-buffer-optimized callable.
 *
 * Exercises the inline path, the heap fallback, move semantics, and
 * destruction exactly once per stored callable — the paths the ASan CI
 * preset watches for leaks and use-after-move.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_function.hh"
#include "sim/logging.hh"

namespace {

using infless::sim::InlineFunction;
using infless::sim::PanicError;

using Fn = InlineFunction<void(), 64>;
using IntFn = InlineFunction<int(int), 64>;

TEST(InlineFunctionTest, DefaultConstructedIsEmpty)
{
    Fn fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_THROW(fn(), PanicError);
}

TEST(InlineFunctionTest, InvokesStoredCallable)
{
    int calls = 0;
    Fn fn = [&calls] { ++calls; };
    EXPECT_TRUE(static_cast<bool>(fn));
    fn();
    fn();
    EXPECT_EQ(calls, 2);
}

TEST(InlineFunctionTest, ForwardsArgumentsAndReturn)
{
    IntFn fn = [](int x) { return x * 3; };
    EXPECT_EQ(fn(14), 42);
}

TEST(InlineFunctionTest, SmallCapturesFitInline)
{
    auto small = [a = std::uint64_t{1}, b = std::uint64_t{2}] {
        (void)a;
        (void)b;
    };
    static_assert(Fn::fitsInline<decltype(small)>);
    auto boundary = [payload = std::array<std::uint64_t, 8>{}] {
        (void)payload;
    };
    static_assert(sizeof(boundary) == 64);
    static_assert(Fn::fitsInline<decltype(boundary)>);
}

TEST(InlineFunctionTest, LargeCapturesUseHeapFallback)
{
    std::array<std::uint64_t, 12> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i + 1;
    auto large = [payload] { return payload; };
    static_assert(sizeof(large) > 64);
    static_assert(!Fn::fitsInline<decltype(large)>);

    InlineFunction<std::array<std::uint64_t, 12>(), 64> fn =
        std::move(large);
    auto result = fn();
    EXPECT_EQ(result[0], 1u);
    EXPECT_EQ(result[11], 12u);
}

TEST(InlineFunctionTest, MoveTransfersOwnership)
{
    int calls = 0;
    Fn a = [&calls] { ++calls; };
    Fn b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: testing moved-from state
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);
}

TEST(InlineFunctionTest, MoveAssignDropsPreviousCallable)
{
    int first = 0;
    int second = 0;
    Fn fn = [&first] { ++first; };
    fn = Fn([&second] { ++second; });
    fn();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
}

TEST(InlineFunctionTest, MoveOnlyCapturesWork)
{
    auto ptr = std::make_unique<int>(7);
    InlineFunction<int(), 64> fn = [p = std::move(ptr)] { return *p; };
    EXPECT_EQ(fn(), 7);
    InlineFunction<int(), 64> moved = std::move(fn);
    EXPECT_EQ(moved(), 7);
}

TEST(InlineFunctionTest, DestroysCapturesExactlyOnce)
{
    // Counts live copies via a shared_ptr: when every InlineFunction
    // holding the capture is gone, use_count drops back to 1.
    auto tracker = std::make_shared<int>(0);
    {
        Fn a = [tracker] { (void)tracker; };
        EXPECT_EQ(tracker.use_count(), 2);
        Fn b = std::move(a);
        EXPECT_EQ(tracker.use_count(), 2);
        b.reset();
        EXPECT_EQ(tracker.use_count(), 1);
    }
    EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InlineFunctionTest, HeapFallbackDestroysExactlyOnce)
{
    auto tracker = std::make_shared<int>(0);
    std::array<std::uint64_t, 16> pad{};
    auto big = [tracker, pad] { (void)tracker, (void)pad; };
    static_assert(!Fn::fitsInline<decltype(big)>);
    {
        Fn a = std::move(big);
        EXPECT_EQ(tracker.use_count(), 2);
        Fn b = std::move(a);
        Fn c;
        c = std::move(b);
        EXPECT_EQ(tracker.use_count(), 2);
    }
    EXPECT_EQ(tracker.use_count(), 1);
}

TEST(InlineFunctionTest, ResetOnEmptyIsANoOp)
{
    Fn fn;
    fn.reset();
    EXPECT_FALSE(static_cast<bool>(fn));
}

} // namespace
