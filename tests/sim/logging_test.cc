/**
 * @file
 * Unit tests for the panic/fatal helpers and the leveled logger.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace {

using infless::sim::fatal;
using infless::sim::FatalError;
using infless::sim::logDebug;
using infless::sim::logError;
using infless::sim::logInfo;
using infless::sim::LogLevel;
using infless::sim::logWarn;
using infless::sim::panic;
using infless::sim::PanicError;
using infless::sim::setLogLevel;
using infless::sim::setWarnHandler;
using infless::sim::simAssert;
using infless::sim::warn;

/** RAII capture of the log sink + a pinned threshold. */
class LogCapture
{
  public:
    explicit LogCapture(LogLevel level)
        : prevLevel_(setLogLevel(level)),
          prevHandler_(setWarnHandler(
              [this](const std::string &msg) { lines.push_back(msg); }))
    {
    }

    ~LogCapture()
    {
        setWarnHandler(prevHandler_);
        setLogLevel(prevLevel_);
    }

    std::vector<std::string> lines;

  private:
    LogLevel prevLevel_;
    std::function<void(const std::string &)> prevHandler_;
};

TEST(LoggingTest, PanicThrowsWithMessage)
{
    try {
        panic("bad thing ", 42);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: bad thing 42");
    }
}

TEST(LoggingTest, FatalThrowsWithMessage)
{
    try {
        fatal("user error: ", "missing model");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: user error: missing model");
    }
}

TEST(LoggingTest, SimAssertPassesOnTrue)
{
    EXPECT_NO_THROW(simAssert(true, "never shown"));
}

TEST(LoggingTest, SimAssertPanicsOnFalse)
{
    EXPECT_THROW(simAssert(false, "invariant broken"), PanicError);
}

TEST(LoggingTest, PanicIsALogicError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
}

TEST(LoggingTest, FatalIsARuntimeError)
{
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(LoggingTest, DefaultThresholdPassesWarnSuppressesInfo)
{
    LogCapture capture(LogLevel::Warn);
    logError("e");
    logWarn("w");
    warn("legacy ", 7);
    logInfo("i");
    logDebug("d");
    EXPECT_EQ(capture.lines,
              (std::vector<std::string>{"error: e", "warn: w",
                                        "warn: legacy 7"}));
}

TEST(LoggingTest, ErrorThresholdSuppressesWarnings)
{
    LogCapture capture(LogLevel::Error);
    logError("only this");
    logWarn("not this");
    warn("nor this");
    EXPECT_EQ(capture.lines,
              (std::vector<std::string>{"error: only this"}));
}

TEST(LoggingTest, DebugThresholdPassesEverything)
{
    LogCapture capture(LogLevel::Debug);
    logError("e");
    logWarn("w");
    logInfo("i");
    logDebug("d");
    EXPECT_EQ(capture.lines,
              (std::vector<std::string>{"error: e", "warn: w", "info: i",
                                        "debug: d"}));
}

TEST(LoggingTest, SetLogLevelReturnsPrevious)
{
    LogLevel original = setLogLevel(LogLevel::Debug);
    EXPECT_EQ(setLogLevel(LogLevel::Info), LogLevel::Debug);
    EXPECT_EQ(setLogLevel(original), LogLevel::Info);
}

TEST(LoggingTest, MessagesFormatMultipleParts)
{
    LogCapture capture(LogLevel::Info);
    logInfo("fault: server ", 3, " crashed at t=", 1.5, "s");
    ASSERT_EQ(capture.lines.size(), 1u);
    EXPECT_EQ(capture.lines[0], "info: fault: server 3 crashed at t=1.5s");
}

} // namespace
