/**
 * @file
 * Unit tests for the panic/fatal helpers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace {

using infless::sim::fatal;
using infless::sim::FatalError;
using infless::sim::panic;
using infless::sim::PanicError;
using infless::sim::simAssert;

TEST(LoggingTest, PanicThrowsWithMessage)
{
    try {
        panic("bad thing ", 42);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: bad thing 42");
    }
}

TEST(LoggingTest, FatalThrowsWithMessage)
{
    try {
        fatal("user error: ", "missing model");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: user error: missing model");
    }
}

TEST(LoggingTest, SimAssertPassesOnTrue)
{
    EXPECT_NO_THROW(simAssert(true, "never shown"));
}

TEST(LoggingTest, SimAssertPanicsOnFalse)
{
    EXPECT_THROW(simAssert(false, "invariant broken"), PanicError);
}

TEST(LoggingTest, PanicIsALogicError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
}

TEST(LoggingTest, FatalIsARuntimeError)
{
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

} // namespace
