/**
 * @file
 * Statistical sanity tests for the Rng distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"

namespace {

using infless::sim::hashCombine;
using infless::sim::Rng;

TEST(RngTest, UniformStaysInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanIsAboutHalf)
{
    Rng rng(2);
    double sum = 0.0;
    constexpr int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate)
{
    Rng rng(3);
    double rate = 4.0;
    double sum = 0.0;
    constexpr int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RngTest, PoissonMeanMatches)
{
    Rng rng(4);
    double mean = 7.5;
    double sum = 0.0;
    constexpr int n = 50'000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, 0.1);
}

TEST(RngTest, PoissonOfNonPositiveMeanIsZero)
{
    Rng rng(5);
    EXPECT_EQ(rng.poisson(0.0), 0);
    EXPECT_EQ(rng.poisson(-3.0), 0);
}

TEST(RngTest, UniformIntCoversInclusiveRange)
{
    Rng rng(6);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ReseedReproducesStream)
{
    Rng rng(42);
    auto a = rng.raw();
    auto b = rng.raw();
    rng.reseed(42);
    EXPECT_EQ(rng.raw(), a);
    EXPECT_EQ(rng.raw(), b);
}

TEST(RngTest, ForkedStreamsDiffer)
{
    Rng rng(42);
    Rng f1 = rng.fork(1);
    Rng f2 = rng.fork(2);
    EXPECT_NE(f1.raw(), f2.raw());
}

TEST(RngTest, HashCombineIsDeterministicAndSpreads)
{
    EXPECT_EQ(hashCombine(1, 2), hashCombine(1, 2));
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
    EXPECT_NE(hashCombine(1, 2), hashCombine(1, 3));
}

TEST(RngTest, NormalMeanAndSpread)
{
    Rng rng(7);
    double sum = 0.0, sq = 0.0;
    constexpr int n = 100'000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP)
{
    Rng rng(8);
    int hits = 0;
    constexpr int n = 100'000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // namespace
