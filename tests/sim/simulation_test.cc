/**
 * @file
 * Unit tests for the Simulation context.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hh"

namespace {

using infless::sim::kTicksPerSec;
using infless::sim::Simulation;
using infless::sim::Tick;

TEST(SimulationTest, AfterSchedulesRelativeToNow)
{
    Simulation sim;
    std::vector<Tick> fired;
    sim.after(100, [&] {
        fired.push_back(sim.now());
        sim.after(50, [&] { fired.push_back(sim.now()); });
    });
    sim.run();
    EXPECT_EQ(fired, (std::vector<Tick>{100, 150}));
}

TEST(SimulationTest, PeriodicFiresAtFixedCadence)
{
    Simulation sim;
    std::vector<Tick> fired;
    sim.every(10, [&] { fired.push_back(sim.now()); }, 45);
    sim.run();
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(SimulationTest, PeriodicStopsWhenAsked)
{
    Simulation sim;
    int count = 0;
    auto handle = sim.every(10, [&] { ++count; }, 1000);
    sim.after(35, [&] { handle->stop(); });
    sim.run();
    EXPECT_EQ(count, 3);
}

TEST(SimulationTest, PeriodicWithInfiniteHorizonWorksWithRunUntil)
{
    Simulation sim;
    int count = 0;
    sim.every(kTicksPerSec, [&] { ++count; });
    sim.runUntil(5 * kTicksPerSec);
    EXPECT_EQ(count, 5);
    sim.runUntil(10 * kTicksPerSec);
    EXPECT_EQ(count, 10);
}

TEST(SimulationTest, ForkedRngsAreIndependentOfDrawOrder)
{
    Simulation a(7);
    Simulation b(7);
    auto a1 = a.forkRng(1);
    auto a2 = a.forkRng(2);
    auto b1 = b.forkRng(1);
    auto b2 = b.forkRng(2);
    // Same seeds and keys -> same streams regardless of interleaving.
    EXPECT_EQ(a1.raw(), b1.raw());
    EXPECT_EQ(a2.raw(), b2.raw());
}

TEST(SimulationTest, SameSeedReproducesSameStream)
{
    Simulation a(123);
    Simulation b(123);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.rng().raw(), b.rng().raw());
}

TEST(SimulationTest, DifferentSeedsDiverge)
{
    Simulation a(1);
    Simulation b(2);
    bool all_equal = true;
    for (int i = 0; i < 10; ++i) {
        if (a.rng().raw() != b.rng().raw())
            all_equal = false;
    }
    EXPECT_FALSE(all_equal);
}

} // namespace
