#include "sim/worker_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace infless::sim {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce)
{
    WorkerPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SerialPoolRunsInline)
{
    WorkerPool pool(1);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, ReusableAcrossJobs)
{
    WorkerPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::atomic<long>> out(17);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            out[i].store(static_cast<long>(i) * round);
        });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i].load(), static_cast<long>(i) * round);
    }
}

TEST(WorkerPool, EmptyJobIsNoop)
{
    WorkerPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(WorkerPool, ResultsIndependentOfPoolSize)
{
    // The determinism contract the cell engine relies on: per-index
    // output slots make the result identical for any worker count.
    auto run = [](std::size_t threads) {
        WorkerPool pool(threads);
        std::vector<std::uint64_t> out(64);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            std::uint64_t s = i;
            for (int k = 0; k < 1000; ++k)
                s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            out[i] = s;
        });
        return out;
    };
    auto serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(8));
}

TEST(WorkerPool, FirstExceptionRethrownOnCaller)
{
    WorkerPool pool(4);
    EXPECT_THROW(pool.parallelFor(32,
                                  [](std::size_t i) {
                                      if (i == 7)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool survives a failed job.
    std::atomic<int> count{0};
    pool.parallelFor(8, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
}

TEST(WorkerPool, DefaultThreadsClampsEnvToHardware)
{
    const char *saved = std::getenv("INFLESS_CELL_THREADS");
    std::string restore = saved ? saved : "";

    unsigned hw_raw = std::thread::hardware_concurrency();
    std::size_t hw = hw_raw == 0 ? 1 : hw_raw;

    setenv("INFLESS_CELL_THREADS", "100000", 1);
    EXPECT_EQ(WorkerPool::defaultThreads(), hw);
    setenv("INFLESS_CELL_THREADS", "1", 1);
    EXPECT_EQ(WorkerPool::defaultThreads(), 1u);
    setenv("INFLESS_CELL_THREADS", "0", 1);
    EXPECT_EQ(WorkerPool::defaultThreads(), 1u);
    setenv("INFLESS_CELL_THREADS", "garbage", 1);
    EXPECT_EQ(WorkerPool::defaultThreads(), 1u);
    setenv("INFLESS_CELL_THREADS", "-4", 1);
    EXPECT_EQ(WorkerPool::defaultThreads(), 1u);
    setenv("INFLESS_CELL_THREADS", "8x", 1);
    EXPECT_EQ(WorkerPool::defaultThreads(), 1u);

    if (saved)
        setenv("INFLESS_CELL_THREADS", restore.c_str(), 1);
    else
        unsetenv("INFLESS_CELL_THREADS");
    EXPECT_GE(WorkerPool::defaultThreads(), 1u);
}

} // namespace
} // namespace infless::sim
