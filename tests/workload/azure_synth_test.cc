/**
 * @file
 * Tests for the Azure-style trace synthesizer: the three patterns must
 * exhibit the statistical structure the paper's Fig. 9/10 describe.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/azure_synth.hh"

namespace {

using infless::sim::kTicksPerHour;
using infless::sim::kTicksPerMin;
using infless::workload::AzureSynthParams;
using infless::workload::RateSeries;
using infless::workload::synthesizeTrace;
using infless::workload::TracePattern;
using infless::workload::tracePatternName;

TEST(AzureSynthTest, PatternNames)
{
    EXPECT_STREQ(tracePatternName(TracePattern::Sporadic), "sporadic");
    EXPECT_STREQ(tracePatternName(TracePattern::Periodic), "periodic");
    EXPECT_STREQ(tracePatternName(TracePattern::Bursty), "bursty");
}

TEST(AzureSynthTest, MeanRateIsNormalizedAcrossPatterns)
{
    for (auto pattern : infless::workload::kAllPatterns) {
        RateSeries s = synthesizeTrace(pattern, 10.0, 2.0, 7);
        EXPECT_NEAR(s.meanRps(), 10.0, 1e-6) << tracePatternName(pattern);
    }
}

TEST(AzureSynthTest, DurationMatchesDays)
{
    RateSeries s = synthesizeTrace(TracePattern::Periodic, 5.0, 3.0, 1);
    EXPECT_EQ(s.duration(), 3 * 24 * kTicksPerHour);
}

TEST(AzureSynthTest, RatesAreNonNegative)
{
    for (auto pattern : infless::workload::kAllPatterns) {
        RateSeries s = synthesizeTrace(pattern, 20.0, 1.0, 3);
        for (double r : s.rps)
            EXPECT_GE(r, 0.0);
    }
}

TEST(AzureSynthTest, PeriodicShowsDiurnalSwing)
{
    RateSeries s = synthesizeTrace(TracePattern::Periodic, 10.0, 2.0, 5);
    // Peak-to-trough ratio reflects the default 0.6 amplitude.
    double peak = s.peakRps();
    double trough = *std::min_element(s.rps.begin(), s.rps.end());
    EXPECT_GT(peak / std::max(trough, 0.1), 2.0);
}

TEST(AzureSynthTest, PeriodicRepeatsAcrossDays)
{
    RateSeries s = synthesizeTrace(TracePattern::Periodic, 10.0, 2.0, 5);
    // Same minute on consecutive days should be within noise of each
    // other: correlation of day 1 and day 2 is high.
    std::size_t day = 24 * 60;
    ASSERT_GE(s.rps.size(), 2 * day);
    double num = 0.0, d1 = 0.0, d2 = 0.0;
    double m1 = 0.0, m2 = 0.0;
    for (std::size_t i = 0; i < day; ++i) {
        m1 += s.rps[i];
        m2 += s.rps[day + i];
    }
    m1 /= static_cast<double>(day);
    m2 /= static_cast<double>(day);
    for (std::size_t i = 0; i < day; ++i) {
        double a = s.rps[i] - m1;
        double b = s.rps[day + i] - m2;
        num += a * b;
        d1 += a * a;
        d2 += b * b;
    }
    double corr = num / std::sqrt(d1 * d2);
    EXPECT_GT(corr, 0.9);
}

TEST(AzureSynthTest, BurstyHasHigherPeakToMeanThanPeriodic)
{
    RateSeries periodic =
        synthesizeTrace(TracePattern::Periodic, 10.0, 3.0, 11);
    RateSeries bursty = synthesizeTrace(TracePattern::Bursty, 10.0, 3.0, 11);
    EXPECT_GT(bursty.peakRps() / bursty.meanRps(),
              periodic.peakRps() / periodic.meanRps());
}

TEST(AzureSynthTest, SporadicIsMostlyIdle)
{
    RateSeries s = synthesizeTrace(TracePattern::Sporadic, 2.0, 3.0, 13);
    std::size_t idle_bins = 0;
    for (double r : s.rps)
        idle_bins += r == 0.0 ? 1 : 0;
    double idle_fraction =
        static_cast<double>(idle_bins) / static_cast<double>(s.rps.size());
    EXPECT_GT(idle_fraction, 0.6);
}

TEST(AzureSynthTest, SporadicHasLongIdleGaps)
{
    RateSeries s = synthesizeTrace(TracePattern::Sporadic, 2.0, 3.0, 17);
    // Find the longest run of zero bins; should exceed half an hour.
    std::size_t best = 0, current = 0;
    for (double r : s.rps) {
        current = r == 0.0 ? current + 1 : 0;
        best = std::max(best, current);
    }
    EXPECT_GT(best * kTicksPerMin, kTicksPerHour / 2);
}

TEST(AzureSynthTest, DeterministicPerSeed)
{
    RateSeries a = synthesizeTrace(TracePattern::Bursty, 10.0, 1.0, 99);
    RateSeries b = synthesizeTrace(TracePattern::Bursty, 10.0, 1.0, 99);
    EXPECT_EQ(a.rps, b.rps);
    RateSeries c = synthesizeTrace(TracePattern::Bursty, 10.0, 1.0, 100);
    EXPECT_NE(a.rps, c.rps);
}

TEST(AzureSynthTest, CustomParamsRespected)
{
    AzureSynthParams params;
    params.pattern = TracePattern::Periodic;
    params.meanRps = 4.0;
    params.days = 0.5;
    params.diurnalAmplitude = 0.0; // flat
    params.seed = 3;
    RateSeries s = synthesizeTrace(params);
    EXPECT_NEAR(s.meanRps(), 4.0, 1e-9);
    // With zero amplitude the series is nearly flat (only log-noise).
    EXPECT_LT(s.peakRps() / s.meanRps(), 1.3);
}

} // namespace
