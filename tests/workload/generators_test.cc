/**
 * @file
 * Unit tests for the basic workload generators.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "workload/generators.hh"

namespace {

using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::Rng;
using infless::sim::Tick;
using infless::workload::constantRate;
using infless::workload::poissonArrivals;
using infless::workload::uniformArrivals;

TEST(GeneratorsTest, ConstantRateFillsAllBins)
{
    auto s = constantRate(25.0, 10 * kTicksPerMin);
    EXPECT_EQ(s.rps.size(), 10u);
    EXPECT_DOUBLE_EQ(s.meanRps(), 25.0);
    EXPECT_DOUBLE_EQ(s.peakRps(), 25.0);
}

TEST(GeneratorsTest, ConstantRateRoundsBinsUp)
{
    auto s = constantRate(1.0, 90 * kTicksPerSec, kTicksPerMin);
    EXPECT_EQ(s.rps.size(), 2u);
}

TEST(GeneratorsTest, PoissonCountConcentratesAroundMean)
{
    Rng rng(11);
    auto trace = poissonArrivals(100.0, 60 * kTicksPerSec, rng);
    EXPECT_NEAR(static_cast<double>(trace.size()), 6000.0, 300.0);
}

TEST(GeneratorsTest, PoissonGapsAreExponential)
{
    Rng rng(13);
    auto trace = poissonArrivals(50.0, 600 * kTicksPerSec, rng);
    auto gaps = trace.idleGaps();
    double sum = 0.0;
    for (Tick g : gaps)
        sum += static_cast<double>(g);
    double mean_gap_sec =
        sum / static_cast<double>(gaps.size()) / kTicksPerSec;
    EXPECT_NEAR(mean_gap_sec, 1.0 / 50.0, 0.002);
}

TEST(GeneratorsTest, ZeroRateIsEmpty)
{
    Rng rng(1);
    EXPECT_TRUE(poissonArrivals(0.0, kTicksPerMin, rng).empty());
    EXPECT_TRUE(uniformArrivals(0.0, kTicksPerMin).empty());
}

TEST(GeneratorsTest, UniformArrivalsAreEvenlySpaced)
{
    auto trace = uniformArrivals(10.0, 2 * kTicksPerSec);
    ASSERT_EQ(trace.size(), 19u); // gap 100ms, starting at 100ms
    auto gaps = trace.idleGaps();
    for (Tick g : gaps)
        EXPECT_EQ(g, kTicksPerSec / 10);
}

TEST(GeneratorsTest, UniformArrivalsStayInsideHorizon)
{
    auto trace = uniformArrivals(3.0, kTicksPerSec);
    for (Tick t : trace.arrivals())
        EXPECT_LT(t, kTicksPerSec);
}

} // namespace
