/**
 * @file
 * Tests for Azure-style trace CSV reading and writing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"

#include "workload/azure_synth.hh"
#include "workload/trace_io.hh"

namespace {

using infless::sim::FatalError;
using infless::sim::kTicksPerMin;
using infless::workload::RateSeries;
using infless::workload::readAzureCsv;
using infless::workload::TraceSet;
using infless::workload::writeAzureCsv;

RateSeries
minuteSeries(std::vector<double> rps)
{
    RateSeries series;
    series.binWidth = kTicksPerMin;
    series.rps = std::move(rps);
    return series;
}

TEST(TraceIoTest, RoundTripPreservesCounts)
{
    TraceSet out;
    out["fn-a"] = minuteSeries({1.0, 2.0, 0.5});
    out["fn-b"] = minuteSeries({0.0, 10.0, 3.0});
    std::stringstream buffer;
    writeAzureCsv(buffer, out);
    TraceSet in = readAzureCsv(buffer);

    ASSERT_EQ(in.size(), 2u);
    ASSERT_EQ(in["fn-a"].rps.size(), 3u);
    // Counts are integral per minute: 1.0 RPS -> 60/min -> 1.0 RPS back.
    EXPECT_DOUBLE_EQ(in["fn-a"].rps[0], 1.0);
    EXPECT_DOUBLE_EQ(in["fn-a"].rps[1], 2.0);
    EXPECT_DOUBLE_EQ(in["fn-b"].rps[1], 10.0);
}

TEST(TraceIoTest, ShorterSeriesPadWithZeros)
{
    TraceSet out;
    out["long"] = minuteSeries({1.0, 1.0, 1.0, 1.0});
    out["short"] = minuteSeries({2.0});
    std::stringstream buffer;
    writeAzureCsv(buffer, out);
    TraceSet in = readAzureCsv(buffer);
    ASSERT_EQ(in["short"].rps.size(), 4u);
    EXPECT_DOUBLE_EQ(in["short"].rps[0], 2.0);
    EXPECT_DOUBLE_EQ(in["short"].rps[3], 0.0);
}

TEST(TraceIoTest, HeaderFormat)
{
    TraceSet out;
    out["f"] = minuteSeries({1.0, 2.0});
    std::stringstream buffer;
    writeAzureCsv(buffer, out);
    std::string header;
    std::getline(buffer, header);
    EXPECT_EQ(header, "function,1,2");
}

TEST(TraceIoTest, EmptyInputYieldsEmptySet)
{
    std::stringstream buffer("");
    EXPECT_TRUE(readAzureCsv(buffer).empty());
}

TEST(TraceIoTest, RaggedRowsAreFatal)
{
    std::stringstream buffer("function,1,2\nfn,5\n");
    EXPECT_THROW(readAzureCsv(buffer), FatalError);
}

TEST(TraceIoTest, NonNumericCountsAreFatal)
{
    std::stringstream buffer("function,1\nfn,many\n");
    EXPECT_THROW(readAzureCsv(buffer), FatalError);
}

TEST(TraceIoTest, NegativeCountsAreFatal)
{
    std::stringstream buffer("function,1\nfn,-3\n");
    EXPECT_THROW(readAzureCsv(buffer), FatalError);
}

TEST(TraceIoTest, NonMinuteBinsAreRejectedOnWrite)
{
    TraceSet out;
    RateSeries bad;
    bad.binWidth = kTicksPerMin / 2;
    bad.rps = {1.0};
    out["bad"] = bad;
    std::stringstream buffer;
    EXPECT_THROW(writeAzureCsv(buffer, out), infless::sim::PanicError);
}

TEST(TraceIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(readAzureCsv("/nonexistent/dir/trace.csv"), FatalError);
}

TEST(TraceIoTest, SynthesizedTraceSurvivesRoundTrip)
{
    TraceSet out;
    out["periodic"] = infless::workload::synthesizeTrace(
        infless::workload::TracePattern::Periodic, 5.0, 0.1, 3);
    std::stringstream buffer;
    writeAzureCsv(buffer, out);
    TraceSet in = readAzureCsv(buffer);
    ASSERT_EQ(in["periodic"].rps.size(), out["periodic"].rps.size());
    // Counts quantize to whole invocations per minute: within 1/60 RPS.
    for (std::size_t i = 0; i < in["periodic"].rps.size(); ++i) {
        EXPECT_NEAR(in["periodic"].rps[i], out["periodic"].rps[i],
                    1.0 / 60.0 + 1e-9);
    }
}

} // namespace
