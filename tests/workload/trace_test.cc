/**
 * @file
 * Unit tests for trace representations.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "sim/rng.hh"
#include "workload/trace.hh"

namespace {

using infless::sim::kTicksPerMin;
using infless::sim::kTicksPerSec;
using infless::sim::Rng;
using infless::sim::Tick;
using infless::workload::ArrivalTrace;
using infless::workload::RateSeries;

TEST(RateSeriesTest, RpsAtIndexesBins)
{
    RateSeries s;
    s.binWidth = kTicksPerMin;
    s.rps = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(s.rpsAt(0), 1.0);
    EXPECT_DOUBLE_EQ(s.rpsAt(kTicksPerMin), 2.0);
    EXPECT_DOUBLE_EQ(s.rpsAt(3 * kTicksPerMin), 0.0); // past the end
    EXPECT_DOUBLE_EQ(s.rpsAt(-5), 0.0);
}

TEST(RateSeriesTest, MeanAndPeak)
{
    RateSeries s;
    s.rps = {1.0, 3.0, 5.0};
    EXPECT_DOUBLE_EQ(s.meanRps(), 3.0);
    EXPECT_DOUBLE_EQ(s.peakRps(), 5.0);
}

TEST(RateSeriesTest, ScaledMultipliesEveryBin)
{
    RateSeries s;
    s.rps = {1.0, 2.0};
    RateSeries doubled = s.scaled(2.0);
    EXPECT_DOUBLE_EQ(doubled.rps[0], 2.0);
    EXPECT_DOUBLE_EQ(doubled.rps[1], 4.0);
    EXPECT_DOUBLE_EQ(s.rps[0], 1.0); // original untouched
}

TEST(RateSeriesTest, TruncatedKeepsPrefix)
{
    RateSeries s;
    s.binWidth = kTicksPerMin;
    s.rps = {1, 2, 3, 4, 5};
    RateSeries cut = s.truncated(2 * kTicksPerMin);
    EXPECT_EQ(cut.rps.size(), 2u);
    RateSeries over = s.truncated(100 * kTicksPerMin);
    EXPECT_EQ(over.rps.size(), 5u);
}

TEST(ArrivalTraceTest, FromRateSeriesMatchesExpectedCount)
{
    RateSeries s;
    s.binWidth = kTicksPerSec;
    s.rps.assign(600, 50.0); // 50 RPS for 10 minutes -> ~30,000 arrivals
    Rng rng(7);
    ArrivalTrace trace = ArrivalTrace::fromRateSeries(s, rng);
    EXPECT_NEAR(static_cast<double>(trace.size()), 30'000.0, 1000.0);
}

TEST(ArrivalTraceTest, ArrivalsAreSortedAndInRange)
{
    RateSeries s;
    s.binWidth = kTicksPerSec;
    s.rps.assign(10, 100.0);
    Rng rng(9);
    ArrivalTrace trace = ArrivalTrace::fromRateSeries(s, rng);
    Tick prev = 0;
    for (Tick t : trace.arrivals()) {
        EXPECT_GE(t, prev);
        EXPECT_LT(t, 10 * kTicksPerSec);
        prev = t;
    }
}

TEST(ArrivalTraceTest, ZeroRateBinsProduceNothing)
{
    RateSeries s;
    s.binWidth = kTicksPerSec;
    s.rps = {0.0, 0.0, 0.0};
    Rng rng(1);
    EXPECT_TRUE(ArrivalTrace::fromRateSeries(s, rng).empty());
}

TEST(ArrivalTraceTest, UnsortedConstructionPanics)
{
    EXPECT_THROW(ArrivalTrace(std::vector<Tick>{5, 3, 8}),
                 infless::sim::PanicError);
}

TEST(ArrivalTraceTest, IdleGapsAreConsecutiveDifferences)
{
    ArrivalTrace trace(std::vector<Tick>{10, 30, 35, 100});
    auto gaps = trace.idleGaps();
    EXPECT_EQ(gaps, (std::vector<Tick>{20, 5, 65}));
}

TEST(ArrivalTraceTest, IdleGapsOfShortTraces)
{
    EXPECT_TRUE(ArrivalTrace().idleGaps().empty());
    EXPECT_TRUE(ArrivalTrace(std::vector<Tick>{5}).idleGaps().empty());
}

TEST(ArrivalTraceTest, DeterministicUnderSameSeed)
{
    RateSeries s;
    s.binWidth = kTicksPerSec;
    s.rps.assign(30, 20.0);
    Rng a(42), b(42);
    auto ta = ArrivalTrace::fromRateSeries(s, a);
    auto tb = ArrivalTrace::fromRateSeries(s, b);
    EXPECT_EQ(ta.arrivals(), tb.arrivals());
}

} // namespace
